package wildfire

import (
	"context"
	"fmt"
	"time"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/obs"
	"umzi/internal/types"
)

// The planner entry point behind the unified query surface. A QuerySpec
// is the declarative form of one table query — what the DB layer's
// fluent builder lowers to — and RunQuery compiles it into one of four
// access paths, reusing the executor's constraint extraction and the
// index set's own selection machinery:
//
//   - point get: the filter pins the whole primary key with equality
//     constraints — one index lookup, one block fetch;
//   - index scan: a forced (Via) or order-serving (OrderBy) index with
//     its equality columns pinned — a verified streaming range scan,
//     record fetches per row;
//   - index-only scan: the same, when the index covers every referenced
//     column — no data block is ever touched;
//   - executor plan: everything else — aggregates, unordered row
//     queries, non-conjunctive filters — evaluated block-at-a-time with
//     the executor's own per-shard index selection (chooseIndex).
//
// Results stream: RunQuery returns a QueryRows whose cursor pulls rows
// lazily and honors the context, so early close and cancellation
// propagate into per-shard workers and block fetches.

// QuerySpec is one declarative table query.
type QuerySpec struct {
	// Filter keeps the rows the predicate accepts; nil keeps everything.
	Filter exec.Expr
	// Columns projects a row query; empty selects all table columns.
	// Must be empty for aggregate queries (use GroupBy).
	Columns []string
	// OrderBy asks for rows ordered by these columns. Order is served
	// from an index whose sort columns start with OrderBy and whose
	// equality columns the filter pins; compilation fails when no index
	// qualifies. Empty leaves row queries in the executor's
	// deterministic (encoded-value) order.
	OrderBy []string
	// GroupBy names the grouping columns of an aggregate query.
	GroupBy []string
	// Aggs requests aggregation; empty makes this a row query.
	Aggs []exec.Agg
	// Limit truncates the result; 0 means unlimited.
	Limit int
	// TS is the snapshot timestamp; zero selects the newest groomed
	// snapshot.
	TS types.TS
	// IncludeLive unions committed-but-ungroomed records into point gets
	// and executor plans (index scans serve the indexed zones only).
	IncludeLive bool
	// NoIndexSelection forces executor plans to scan the zones even when
	// the filter matches an index (baselines, ablations).
	NoIndexSelection bool
	// Via forces the named index ("" is the primary) when ViaSet is
	// true; the filter must pin the index's equality columns.
	Via    string
	ViaSet bool
	// Trace, when set, captures the compiled plan choice and per-shard
	// execution profile of the run (Query.Explain attaches one). Nil is a
	// no-op.
	Trace *obs.QueryTrace
}

// QueryRows is a streaming query result: output column names plus a
// cursor of result rows, each aligned with Columns.
type QueryRows struct {
	Columns []string
	Cursor  *Cursor[[]keyenc.Value]
}

// Close closes the underlying cursor.
func (r *QueryRows) Close() error { return r.Cursor.Close() }

// queryMode enumerates the compiled access paths.
type queryMode int

const (
	modeExec queryMode = iota
	modePointGet
	modeIndexScan
	modeIndexOnly
)

// compiledQuery is one QuerySpec lowered to an access path.
type compiledQuery struct {
	spec  QuerySpec
	bound *exec.BoundPlan
	mode  queryMode

	// Index modes.
	index      string
	ti         *tableIndex
	eq, lo, hi []keyenc.Value
	project    []int // table-column ordinals of the output columns
	// pushLimit is set when the scan bounds absorb the filter exactly,
	// so the residual filter drops nothing and the row limit may be
	// pushed into the index scan itself (every scanned row is an
	// emitted row). Otherwise the limit counts emissions only.
	pushLimit bool
}

// planQuery compiles a spec against a table and its index set. The
// index set is planning metadata only — the sharded layer passes shard
// 0's set (identical on every shard, like the executor's per-shard
// chooseIndex relies on).
func planQuery(t TableDef, indexes []*tableIndex, spec QuerySpec) (*compiledQuery, error) {
	bound, err := exec.Plan{
		Filter:  spec.Filter,
		Columns: spec.Columns,
		GroupBy: spec.GroupBy,
		Aggs:    spec.Aggs,
		Limit:   spec.Limit,
	}.Bind(t.Columns)
	if err != nil {
		return nil, err
	}
	cq := &compiledQuery{spec: spec, bound: bound}

	if len(spec.Aggs) > 0 {
		if len(spec.OrderBy) > 0 {
			return nil, fmt.Errorf("wildfire: OrderBy applies to row queries; aggregate results are ordered by group key")
		}
		if spec.ViaSet {
			return nil, fmt.Errorf("wildfire: Via cannot combine with aggregates (the executor selects the index)")
		}
		cq.mode = modeExec
		return cq, nil
	}

	// Row query: Bind already resolved the projection (defaulting to all
	// table columns) to ordinals.
	cq.project = bound.Projection()

	cons, consOK := exec.ExtractConstraints(spec.Filter)
	kindOf := func(col string) keyenc.Kind { return t.Columns[t.colIndex(col)].Kind }
	pinned := func(col string) bool {
		if !consOK {
			return false
		}
		v, ok := cons.Eq[col]
		return ok && kindCompatible(v.Kind(), kindOf(col))
	}

	switch {
	case spec.ViaSet:
		ti := findIndexMeta(indexes, spec.Via)
		if ti == nil {
			return nil, fmt.Errorf("wildfire: table %s has no index %q", t.Name, spec.Via)
		}
		if len(spec.OrderBy) > 0 && !servesOrder(ti, spec.OrderBy) {
			return nil, fmt.Errorf("wildfire: index %q cannot serve ORDER BY %v (its sort columns are %v)",
				spec.Via, spec.OrderBy, ti.spec.Sort[:ti.userSort])
		}
		if err := cq.bindIndexScan(t, ti, cons, pinned); err != nil {
			return nil, err
		}
	case len(spec.OrderBy) > 0:
		var ti *tableIndex
		for _, cand := range indexes {
			if servesOrder(cand, spec.OrderBy) && scannable(cand, pinned) {
				ti = cand
				break
			}
		}
		if ti == nil {
			return nil, fmt.Errorf("wildfire: no index of table %s can serve ORDER BY %v (need an index sorted on it with its equality columns pinned by the filter)", t.Name, spec.OrderBy)
		}
		if err := cq.bindIndexScan(t, ti, cons, pinned); err != nil {
			return nil, err
		}
	default:
		// Point get when the whole primary key is pinned; the executor
		// otherwise (it performs its own index selection and unions the
		// live zone).
		primary := indexes[0]
		full := true
		for _, group := range [][]string{primary.spec.Equality, primary.spec.Sort} {
			for _, c := range group {
				if !pinned(c) {
					full = false
				}
			}
		}
		if full && !spec.NoIndexSelection {
			cq.mode = modePointGet
			cq.ti = primary
			for _, c := range primary.spec.Equality {
				cq.eq = append(cq.eq, cons.Eq[c])
			}
			for _, c := range primary.spec.Sort {
				cq.lo = append(cq.lo, cons.Eq[c])
			}
			return cq, nil
		}
		cq.mode = modeExec
	}
	return cq, nil
}

// bindIndexScan lowers a row query onto one index: scan bounds from the
// constraints, covered test deciding index-only vs record fetches, and
// the limit-pushdown decision (safe exactly when the bounds absorb the
// whole filter, so the residual re-check drops nothing).
func (cq *compiledQuery) bindIndexScan(t TableDef, ti *tableIndex, cons exec.IndexConstraints, pinned func(string) bool) error {
	for _, c := range ti.spec.Equality {
		if !pinned(c) {
			return fmt.Errorf("wildfire: index %q needs the filter to pin equality column %q", ti.name, c)
		}
	}
	cq.index = ti.name
	cq.ti = ti
	var consumed map[string]bool
	cq.eq, cq.lo, cq.hi, consumed = ti.indexScanBounds(t, cons)
	if ti.coversOrdinals(cq.bound.ReferencedOrdinals()) {
		cq.mode = modeIndexOnly
	} else {
		cq.mode = modeIndexScan
	}
	cq.pushLimit = filterAbsorbed(cq.spec.Filter, consumed)
	return nil
}

// filterAbsorbed reports whether scan bounds that consumed the listed
// columns represent the filter exactly: the filter must be a lossless
// conjunction of Eq/Ge/Le (exec.ExactConstraints), every constrained
// column must be consumed, and no column's equality pin may contradict
// its own range (the bounds keep the pin; the range would reject it).
func filterAbsorbed(filter exec.Expr, consumed map[string]bool) bool {
	cons, exact := exec.ExactConstraints(filter)
	if !exact {
		return false
	}
	for col := range cons.Columns() {
		if !consumed[col] {
			return false
		}
	}
	for col, v := range cons.Eq {
		if lo, ok := cons.Lo[col]; ok && keyenc.Compare(lo, v) > 0 {
			return false
		}
		if hi, ok := cons.Hi[col]; ok && keyenc.Compare(hi, v) < 0 {
			return false
		}
	}
	return true
}

// servesOrder reports whether an index's user-declared sort columns
// start with the requested order.
func servesOrder(ti *tableIndex, orderBy []string) bool {
	if len(orderBy) > ti.userSort {
		return false
	}
	for i, c := range orderBy {
		if ti.spec.Sort[i] != c {
			return false
		}
	}
	return true
}

// scannable reports whether a filter pins every equality column of the
// index (trivially true for pure range indexes).
func scannable(ti *tableIndex, pinned func(string) bool) bool {
	for _, c := range ti.spec.Equality {
		if !pinned(c) {
			return false
		}
	}
	return true
}

// findIndexMeta resolves an index by name in a planning set.
func findIndexMeta(indexes []*tableIndex, name string) *tableIndex {
	for _, ti := range indexes {
		if ti.name == name {
			return ti
		}
	}
	return nil
}

// queryOps is what the compiled-query runner needs from a topology —
// Engine and ShardedEngine both satisfy it through thin adapters, which
// is precisely the collapse of the single/sharded fork: one runner, two
// fan-out strategies underneath.
type queryOps interface {
	getOn(ctx context.Context, index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error)
	scanStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[Record], error)
	indexOnlyStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[[]keyenc.Value], error)
	execPartials(ctx context.Context, bound *exec.BoundPlan, filter exec.Expr, opts QueryOptions) ([]*exec.Partial, error)
}

// runCompiled executes a compiled query against one topology.
func runCompiled(ctx context.Context, ops queryOps, cq *compiledQuery) (*QueryRows, error) {
	spec := cq.spec
	opts := QueryOptions{TS: spec.TS, IncludeLive: spec.IncludeLive, NoIndexSelection: spec.NoIndexSelection, Trace: spec.Trace}
	spec.Trace.SetPlan(planLabel(cq.mode), cq.index)

	switch cq.mode {
	case modePointGet:
		rec, found, err := ops.getOn(ctx, "", cq.eq, cq.lo, opts)
		if err != nil {
			return nil, err
		}
		emitted := false
		fetch := func() ([]keyenc.Value, bool, error) {
			if emitted || !found {
				return nil, false, ctx.Err()
			}
			emitted = true
			row := rec.Row
			if !cq.bound.Matches(func(c int) keyenc.Value { return row[c] }) {
				return nil, false, ctx.Err()
			}
			return projectRow(row, cq.project), true, nil
		}
		return &QueryRows{Columns: cq.bound.Columns(), Cursor: newCursor(fetch, nil)}, nil

	case modeIndexScan:
		// The scan limit is pushed down when the bounds absorb the
		// filter exactly (pushLimit); a residual filter can drop scanned
		// rows, so otherwise the limit counts emissions only — the
		// stream stops pulling (and cancels shard workers) as soon as it
		// has them.
		scanOpts := opts
		if cq.pushLimit {
			scanOpts.Limit = spec.Limit
		}
		cur, err := ops.scanStream(ctx, cq.index, cq.eq, cq.lo, cq.hi, scanOpts)
		if err != nil {
			return nil, err
		}
		project := cq.project
		fetch := limitedFetch(spec.Limit, func() ([]keyenc.Value, bool, error) {
			for cur.Next() {
				rec := cur.Value()
				row := rec.Row
				if !cq.bound.Matches(func(c int) keyenc.Value { return row[c] }) {
					continue
				}
				return projectRow(row, project), true, nil
			}
			return nil, false, cur.Err()
		})
		return &QueryRows{Columns: cq.bound.Columns(), Cursor: newCursor(fetch, cur.Close)}, nil

	case modeIndexOnly:
		scanOpts := opts
		if cq.pushLimit {
			scanOpts.Limit = spec.Limit
		}
		cur, err := ops.indexOnlyStream(ctx, cq.index, cq.eq, cq.lo, cq.hi, scanOpts)
		if err != nil {
			return nil, err
		}
		valPos, project := cq.ti.valPos, cq.project
		fetch := limitedFetch(spec.Limit, func() ([]keyenc.Value, bool, error) {
			for cur.Next() {
				flat := cur.Value()
				if !cq.bound.Matches(func(c int) keyenc.Value { return flat[valPos[c]] }) {
					continue
				}
				out := make([]keyenc.Value, len(project))
				for i, ord := range project {
					out[i] = flat[valPos[ord]]
				}
				return out, true, nil
			}
			return nil, false, cur.Err()
		})
		return &QueryRows{Columns: cq.bound.Columns(), Cursor: newCursor(fetch, cur.Close)}, nil

	default: // modeExec
		parts, err := ops.execPartials(ctx, cq.bound, spec.Filter, opts)
		if err != nil {
			return nil, err
		}
		it := cq.bound.FinalizeIter(parts...)
		fetch := func() ([]keyenc.Value, bool, error) {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			row, ok := it.Next()
			return row, ok, nil
		}
		return &QueryRows{Columns: it.Columns(), Cursor: newCursor(fetch, nil)}, nil
	}
}

// limitedFetch caps a fetch function at limit emissions (0 = no cap).
func limitedFetch(limit int, fetch func() ([]keyenc.Value, bool, error)) func() ([]keyenc.Value, bool, error) {
	if limit <= 0 {
		return fetch
	}
	emitted := 0
	return func() ([]keyenc.Value, bool, error) {
		if emitted >= limit {
			return nil, false, nil
		}
		row, ok, err := fetch()
		if ok {
			emitted++
		}
		return row, ok, err
	}
}

func projectRow(row Row, ords []int) []keyenc.Value {
	out := make([]keyenc.Value, len(ords))
	for i, ord := range ords {
		out[i] = row[ord]
	}
	return out
}

// ---- Engine adapter --------------------------------------------------

type engineOps struct{ e *Engine }

func (o engineOps) getOn(ctx context.Context, index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return o.e.GetOnContext(ctx, index, eq, sortv, opts)
}
func (o engineOps) scanStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[Record], error) {
	return o.e.ScanStreamOn(ctx, index, eq, lo, hi, opts)
}
func (o engineOps) indexOnlyStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[[]keyenc.Value], error) {
	return o.e.IndexOnlyStreamOn(ctx, index, eq, lo, hi, opts)
}
func (o engineOps) execPartials(ctx context.Context, bound *exec.BoundPlan, filter exec.Expr, opts QueryOptions) ([]*exec.Partial, error) {
	part, err := o.e.executePlan(ctx, bound, filter, opts)
	if err != nil {
		return nil, err
	}
	return []*exec.Partial{part}, nil
}

// RunQuery compiles and runs one declarative query on this table shard,
// returning a streaming result.
func (e *Engine) RunQuery(ctx context.Context, spec QuerySpec) (*QueryRows, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	start := time.Now()
	cq, err := planQuery(e.table, e.indexSet(), spec)
	if err != nil {
		return nil, err
	}
	rows, err := runCompiled(ctx, engineOps{e}, cq)
	if err != nil {
		return nil, err
	}
	return e.mx.instrumentRows(cq.mode, spec.Trace, rows, start), nil
}

// ---- ShardedEngine adapter -------------------------------------------

type shardedOps struct{ s *ShardedEngine }

func (o shardedOps) getOn(ctx context.Context, index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return o.s.GetOnContext(ctx, index, eq, sortv, opts)
}
func (o shardedOps) scanStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[Record], error) {
	return o.s.ScanStreamOn(ctx, index, eq, lo, hi, opts)
}
func (o shardedOps) indexOnlyStream(ctx context.Context, index string, eq, lo, hi []keyenc.Value, opts QueryOptions) (*Cursor[[]keyenc.Value], error) {
	return o.s.IndexOnlyStreamOn(ctx, index, eq, lo, hi, opts)
}
func (o shardedOps) execPartials(ctx context.Context, bound *exec.BoundPlan, filter exec.Expr, opts QueryOptions) ([]*exec.Partial, error) {
	s := o.s
	parts := make([]*exec.Partial, len(s.shards))
	err := s.pool.each(ctx, len(s.shards), func(i int) error {
		part, err := s.shards[i].executePlan(ctx, bound, filter, opts)
		parts[i] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// RunQuery compiles and runs one declarative query across all shards,
// returning a streaming result. Planning uses shard 0's index set —
// identical on every shard by construction.
func (s *ShardedEngine) RunQuery(ctx context.Context, spec QuerySpec) (*QueryRows, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	if spec.TS == 0 {
		spec.TS = s.SnapshotTS()
	}
	start := time.Now()
	cq, err := planQuery(s.table, s.shards[0].indexSet(), spec)
	if err != nil {
		return nil, err
	}
	rows, err := runCompiled(ctx, shardedOps{s}, cq)
	if err != nil {
		return nil, err
	}
	return s.mx.instrumentRows(cq.mode, spec.Trace, rows, start), nil
}
