package wildfire

import (
	"context"
	"fmt"

	"umzi/internal/core"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
)

// Executor index selection: a plan whose (conjunctive) predicate pins
// every equality column of some index runs as an index lookup — fetching
// qualifying rows by RID, or answering covered plans straight from the
// index's key and included columns — instead of scanning the columnar
// zones. This is the classic HTAP access-path decision the multi-index
// set exists for: a selective operational predicate on a non-key column
// touches a handful of rows through its secondary while analytics keep
// scanning, and both observe identical multi-version semantics.

// indexPlanCandidateCap bounds how many index candidates an
// index-selected plan may materialize before the executor abandons the
// index and reverts to the zone scan. There are no table statistics, so
// the selection rule is structural; this cap is the cost guard that
// keeps a syntactic match on a low-cardinality column (half the table
// behind one equality value) from turning the plan into millions of
// per-candidate back-checks. The wasted work on fallback is one bounded
// index scan. The A8 ablation sweeps the crossover this approximates.
const indexPlanCandidateCap = 4096

// errIndexPlanTooBroad reverts an index-selected plan to the zone scan.
var errIndexPlanTooBroad = fmt.Errorf("wildfire: index plan exceeds the candidate cap")

// executePlan evaluates a bound plan on this shard, routing through an
// index when the selection rule finds one (and the caller didn't opt
// out), falling back to the zone scan otherwise — including when the
// index probe turns out too broad to beat the scan. filter is the
// plan's original predicate expression (the bound plan cannot be
// introspected syntactically).
func (e *Engine) executePlan(ctx context.Context, bound *exec.BoundPlan, filter exec.Expr, opts QueryOptions) (*exec.Partial, error) {
	if !opts.NoIndexSelection {
		if ti, cons, ok := e.chooseIndex(filter); ok {
			part, err := e.executeViaIndex(ctx, bound, ti, cons, opts)
			if err != errIndexPlanTooBroad {
				return part, err
			}
		}
	}
	return e.executeBound(ctx, bound, opts)
}

// chooseIndex applies the selection rule to the current index set: among
// the indexes whose every equality column is pinned by an Eq constraint
// (or, for pure range indexes, whose leading sort column is bounded on
// both sides), pick the one matching the most key columns. Returns
// ok=false when the predicate is not conjunctive or no index qualifies —
// the plan then runs as a zone scan.
func (e *Engine) chooseIndex(filter exec.Expr) (*tableIndex, exec.IndexConstraints, bool) {
	if filter == nil {
		return nil, exec.IndexConstraints{}, false
	}
	cons, ok := exec.ExtractConstraints(filter)
	if !ok {
		return nil, exec.IndexConstraints{}, false
	}
	var best *tableIndex
	bestScore := -1
	for _, ti := range e.indexSet() {
		if score, ok := ti.matchScore(e.table, cons); ok && score > bestScore {
			best, bestScore = ti, score
		}
	}
	if best == nil {
		return nil, exec.IndexConstraints{}, false
	}
	return best, cons, true
}

// kindCompatible reports whether a constraint value's encoding orders
// consistently with a column of the given kind (bytes and strings share
// an encoding; everything else must match exactly).
func kindCompatible(got, want keyenc.Kind) bool {
	if got == want {
		return true
	}
	return (got == keyenc.KindBytes || got == keyenc.KindString) &&
		(want == keyenc.KindBytes || want == keyenc.KindString)
}

// matchScore scores an index against extracted constraints. ok requires
// every equality column pinned with a compatible value kind; pure range
// indexes (no equality columns) additionally require the leading sort
// column bounded on both sides, so an unbounded scan never masquerades
// as an index lookup. The score prefers more pinned equality columns
// and rewards a constrained leading sort column.
func (ti *tableIndex) matchScore(t TableDef, cons exec.IndexConstraints) (int, bool) {
	kindOf := func(col string) keyenc.Kind { return t.Columns[t.colIndex(col)].Kind }
	for _, c := range ti.spec.Equality {
		v, ok := cons.Eq[c]
		if !ok || !kindCompatible(v.Kind(), kindOf(c)) {
			return 0, false
		}
	}
	score := 2 * len(ti.spec.Equality)
	doubleBounded := false
	if ti.userSort > 0 {
		c := ti.spec.Sort[0]
		want := kindOf(c)
		if v, ok := cons.Eq[c]; ok && kindCompatible(v.Kind(), want) {
			score++
			doubleBounded = true
		} else {
			lo, hasLo := cons.Lo[c]
			hi, hasHi := cons.Hi[c]
			hasLo = hasLo && kindCompatible(lo.Kind(), want)
			hasHi = hasHi && kindCompatible(hi.Kind(), want)
			if hasLo || hasHi {
				score++
			}
			doubleBounded = hasLo && hasHi
		}
	}
	if len(ti.spec.Equality) == 0 && !doubleBounded {
		return 0, false
	}
	return score, true
}

// indexScanBounds lowers constraints to the index's scan key: the
// equality values plus inclusive bounds over the longest usable sort
// prefix (a sort column extends the bound past itself only when pinned
// to a single value). The bounds are a superset of the predicate; the
// caller re-applies the full filter. consumed reports the columns whose
// constraints the bounds absorbed completely — the equality columns,
// pinned sort columns, and whichever inclusive bounds of the boundary
// sort column were folded in (a constraint folded only partially, e.g.
// a kind-incompatible value, is not consumed).
func (ti *tableIndex) indexScanBounds(t TableDef, cons exec.IndexConstraints) (eq, sortLo, sortHi []keyenc.Value, consumed map[string]bool) {
	consumed = make(map[string]bool, len(ti.spec.Equality)+ti.userSort)
	eq = make([]keyenc.Value, len(ti.spec.Equality))
	for i, c := range ti.spec.Equality {
		eq[i] = cons.Eq[c]
		consumed[c] = true
	}
	kindOf := func(col string) keyenc.Kind { return t.Columns[t.colIndex(col)].Kind }
	for i := 0; i < ti.userSort; i++ {
		c := ti.spec.Sort[i]
		want := kindOf(c)
		if v, ok := cons.Eq[c]; ok && kindCompatible(v.Kind(), want) {
			sortLo = append(sortLo, v)
			sortHi = append(sortHi, v)
			consumed[c] = true
			continue // pinned: deeper sort columns may constrain further
		}
		lo, hasLo := cons.Lo[c]
		hi, hasHi := cons.Hi[c]
		okLo := hasLo && kindCompatible(lo.Kind(), want)
		okHi := hasHi && kindCompatible(hi.Kind(), want)
		if okLo {
			sortLo = append(sortLo, lo)
		}
		if okHi {
			sortHi = append(sortHi, hi)
		}
		if okLo == hasLo && okHi == hasHi && (okLo || okHi) {
			consumed[c] = true
		}
		break
	}
	return eq, sortLo, sortHi, consumed
}

// executeViaIndex evaluates a bound plan through one index: a verified
// range scan bounded by the extracted constraints, the full filter
// re-applied per row, rows fed to the partial either straight from the
// index (covered plans: every referenced column is an index column) or
// by RID fetch. Multi-version semantics match executeBound: exactly the
// newest visible version of each primary key qualifies, live records
// (when requested at the newest snapshot) supersede indexed ones.
func (e *Engine) executeViaIndex(ctx context.Context, bound *exec.BoundPlan, ti *tableIndex, cons exec.IndexConstraints, opts QueryOptions) (*exec.Partial, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)

	eq, sortLo, sortHi, _ := ti.indexScanBounds(e.table, cons)
	covered := ti.coversOrdinals(bound.ReferencedOrdinals())
	// Live overlay: committed-but-ungroomed versions are newer than every
	// indexed version of their key, so they suppress index results for
	// the same primary key and contribute their own qualifying rows.
	useLive := opts.IncludeLive && ts >= e.LastGroomTS()
	// Probe with a candidate cap before paying for verification: a
	// too-broad match reverts to the zone scan via errIndexPlanTooBroad.
	entries, err := ti.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       ts,
		Method:   core.MethodPQ,
		Limit:    indexPlanCandidateCap + 1,
	})
	if err != nil {
		return nil, err
	}
	if len(entries) > indexPlanCandidateCap {
		return nil, errIndexPlanTooBroad
	}
	// Decoded values are needed to serve covered plans and to extract
	// primary keys for live suppression; a non-covered primary-index
	// plan with no live overlay fetches by RID and never reads them
	// (secondaries always decode for the back-check).
	ves, err := e.verifyEntries(ctx, ti, entries, ts, 0, covered || useLive, opts.Trace)
	if err != nil {
		return nil, err
	}
	type liveBest struct {
		row Row
		seq uint64
	}
	var live map[string]liveBest
	if useLive {
		live = make(map[string]liveBest)
		for _, rep := range e.replicas {
			rep.scan(func(rec logRecord) {
				pk := e.table.pkEncoding(rec.row)
				if best, ok := live[pk]; !ok || rec.commitSeq >= best.seq {
					live[pk] = liveBest{row: rec.row, seq: rec.commitSeq}
				}
			})
		}
	}

	part := bound.NewPartial()
	for _, ve := range ves {
		if len(live) > 0 {
			if _, shadowed := live[ti.pkEncodingFromFlat(ve.flat)]; shadowed {
				continue
			}
		}
		var view exec.RowView
		if covered {
			flat, pos := ve.flat, ti.valPos
			view = func(c int) keyenc.Value { return flat[pos[c]] }
		} else {
			rec, err := e.FetchContext(ctx, ve.entry.RID)
			if err != nil {
				return nil, err
			}
			row := rec.Row
			view = func(c int) keyenc.Value { return row[c] }
		}
		if !bound.Matches(view) {
			continue
		}
		part.Add(view)
	}
	for _, best := range live {
		row := best.row
		view := exec.RowView(func(c int) keyenc.Value { return row[c] })
		if bound.Matches(view) {
			part.Add(view)
		}
	}
	return part, nil
}

// ---- Index-choice reads on the sharded engine ----------------------

// secondaryMeta resolves the sharded layer's own metadata for a named
// secondary (ordinals for routing and merge keys; idx is nil).
func (s *ShardedEngine) secondaryMeta(name string) (*tableIndex, error) {
	s.secMu.Lock()
	defer s.secMu.Unlock()
	ti, ok := s.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("wildfire: table %s has no index %q", s.table.Name, name)
	}
	return ti, nil
}

// pinSecondary reports the single shard able to serve a secondary query
// with the given equality values: every routing column must be one of
// the index's equality columns. Otherwise the query scatters.
func (s *ShardedEngine) pinSecondary(ti *tableIndex, eq []keyenc.Value) (int, bool) {
	var vals []keyenc.Value
	for _, rc := range s.router.cols {
		found := -1
		for i, c := range ti.spec.Equality {
			if c == rc {
				found = i
				break
			}
		}
		if found < 0 {
			return 0, false
		}
		vals = append(vals, eq[found])
	}
	return int(keyenc.HashValues(vals) % uint64(s.router.n)), true
}

// CreateIndex builds a new secondary on every shard (backfill runs
// per shard, online) and registers it for routing and merging.
func (s *ShardedEngine) CreateIndex(spec SecondaryIndexSpec) error {
	if s.closed.Load() {
		return fmt.Errorf("wildfire: engine closed")
	}
	if err := spec.Validate(s.table); err != nil {
		return err
	}
	// One CreateIndex at a time: without this, two concurrent calls with
	// the same name but different specs could each win on different
	// shards and permanently diverge the per-shard catalogs. secMu stays
	// a short-hold map lock so queries never wait behind a backfill.
	s.createMu.Lock()
	defer s.createMu.Unlock()
	s.secMu.Lock()
	if existing, ok := s.secondaries[spec.Name]; ok {
		s.secMu.Unlock()
		if specEqual(existing.declared, spec.IndexSpec) {
			return nil
		}
		return fmt.Errorf("wildfire: table %s already has an index %q with a different spec", s.table.Name, spec.Name)
	}
	s.secMu.Unlock()
	// Per-shard CreateIndex is idempotent on an identical spec, so a
	// partial failure (some shards built, some not) is retryable: rerun
	// and only the stragglers backfill.
	err := s.pool.each(context.Background(), len(s.shards), func(i int) error {
		return s.shards[i].CreateIndex(spec)
	})
	if err != nil {
		return err
	}
	s.registerSecondary(spec)
	return nil
}

// registerSecondary records a secondary's routing/merge metadata.
func (s *ShardedEngine) registerSecondary(spec SecondaryIndexSpec) {
	ti := newTableIndex(s.table, s.ixSpec, spec.Name, spec.IndexSpec, nil)
	s.secMu.Lock()
	s.secondaries[spec.Name] = ti
	s.secMu.Unlock()
}

// GetOn is Engine.GetOn across shards: pinned when the sharding key is
// bound by the index's equality columns, otherwise a scattered
// first-match query.
func (s *ShardedEngine) GetOn(index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return s.GetOnContext(context.Background(), index, eq, sortv, opts)
}

// GetOnContext is GetOn honoring a context.
func (s *ShardedEngine) GetOnContext(ctx context.Context, index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if index == "" {
		return s.GetContext(ctx, eq, sortv, opts)
	}
	recs, err := drainCursor(s.ScanStreamOn(ctx, index, eq, sortv, sortv, withLimit(opts, 1)))
	if err != nil || len(recs) == 0 {
		return Record{}, false, err
	}
	return recs[0], true, nil
}

// ScanOn is Scan through a chosen index across shards; it drains
// ScanStreamOn (one scatter-gather code path, uniform Limit handling).
func (s *ShardedEngine) ScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	return drainCursor(s.ScanStreamOn(context.Background(), index, eq, sortLo, sortHi, opts))
}

// IndexOnlyScanOn is ScanOn assembled entirely from the shards' chosen
// indexes; it drains IndexOnlyStreamOn.
func (s *ShardedEngine) IndexOnlyScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	return drainCursor(s.IndexOnlyStreamOn(context.Background(), index, eq, sortLo, sortHi, opts))
}
