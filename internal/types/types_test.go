package types

import (
	"testing"
	"testing/quick"
)

func TestZoneString(t *testing.T) {
	cases := []struct {
		z    ZoneID
		want string
	}{
		{ZoneLive, "live"},
		{ZoneGroomed, "groomed"},
		{ZonePostGroomed, "post-groomed"},
		{ZoneID(9), "zone(9)"},
	}
	for _, c := range cases {
		if got := c.z.String(); got != c.want {
			t.Errorf("ZoneID(%d).String() = %q, want %q", c.z, got, c.want)
		}
	}
}

func TestRIDRoundTrip(t *testing.T) {
	rids := []RID{
		{},
		{Zone: ZoneGroomed, Block: 0, Offset: 0},
		{Zone: ZonePostGroomed, Block: 1<<64 - 1, Offset: 1<<32 - 1},
		{Zone: ZoneLive, Block: 42, Offset: 7},
	}
	for _, r := range rids {
		enc := EncodeRID(nil, r)
		if len(enc) != RIDSize {
			t.Fatalf("EncodeRID(%v) produced %d bytes, want %d", r, len(enc), RIDSize)
		}
		got, err := DecodeRID(enc)
		if err != nil {
			t.Fatalf("DecodeRID(%v): %v", r, err)
		}
		if got != r {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestRIDRoundTripQuick(t *testing.T) {
	f := func(zone uint8, block uint64, offset uint32) bool {
		r := RID{Zone: ZoneID(zone), Block: block, Offset: offset}
		got, err := DecodeRID(EncodeRID(nil, r))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRIDShort(t *testing.T) {
	if _, err := DecodeRID(make([]byte, RIDSize-1)); err == nil {
		t.Error("DecodeRID on short input: want error, got nil")
	}
}

func TestRIDIsZero(t *testing.T) {
	if !(RID{}).IsZero() {
		t.Error("zero RID should report IsZero")
	}
	if (RID{Block: 1}).IsZero() {
		t.Error("non-zero RID should not report IsZero")
	}
}

func TestRIDEncodeAppends(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	out := EncodeRID(prefix, RID{Zone: ZoneGroomed, Block: 5, Offset: 6})
	if len(out) != 2+RIDSize {
		t.Fatalf("len = %d, want %d", len(out), 2+RIDSize)
	}
	if out[0] != 0xaa || out[1] != 0xbb {
		t.Error("EncodeRID must append, not overwrite, the prefix")
	}
}

func TestMakeTSParts(t *testing.T) {
	ts := MakeTS(123456, 789)
	if got := ts.GroomSeq(); got != 123456 {
		t.Errorf("GroomSeq = %d, want 123456", got)
	}
	if got := ts.CommitSeq(); got != 789 {
		t.Errorf("CommitSeq = %d, want 789", got)
	}
}

func TestMakeTSMonotonicAcrossGrooms(t *testing.T) {
	// beginTS must be monotonically increasing across groom cycles even if
	// a later cycle has a smaller commit sequence (§2.1).
	a := MakeTS(10, 1<<tsCommitBits-1)
	b := MakeTS(11, 0)
	if !(a < b) {
		t.Errorf("TS of later groom cycle must be larger: %v vs %v", a, b)
	}
}

func TestMakeTSCommitTruncated(t *testing.T) {
	// commit sequences above 24 bits must not bleed into the groom part.
	ts := MakeTS(5, 1<<31-1)
	if got := ts.GroomSeq(); got != 5 {
		t.Errorf("GroomSeq polluted by oversized commitSeq: %d", got)
	}
}

func TestTSOrderingQuick(t *testing.T) {
	f := func(g1, g2 uint32, c1, c2 uint32) bool {
		a := MakeTS(uint64(g1), c1)
		b := MakeTS(uint64(g2), c2)
		if g1 != g2 {
			return (g1 < g2) == (a < b)
		}
		return (c1&(1<<tsCommitBits-1) < c2&(1<<tsCommitBits-1)) == (a < b) ||
			(c1&(1<<tsCommitBits-1) == c2&(1<<tsCommitBits-1)) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTSString(t *testing.T) {
	if got := MaxTS.String(); got != "ts(max)" {
		t.Errorf("MaxTS.String() = %q", got)
	}
	if got := MakeTS(3, 4).String(); got != "ts(3.4)" {
		t.Errorf("MakeTS(3,4).String() = %q", got)
	}
}

func TestBlockRangeContains(t *testing.T) {
	r := BlockRange{Min: 5, Max: 9}
	for id, want := range map[uint64]bool{4: false, 5: true, 7: true, 9: true, 10: false} {
		if got := r.Contains(id); got != want {
			t.Errorf("%v.Contains(%d) = %v, want %v", r, id, got, want)
		}
	}
}

func TestBlockRangeCovers(t *testing.T) {
	r := BlockRange{Min: 5, Max: 9}
	cases := []struct {
		o    BlockRange
		want bool
	}{
		{BlockRange{5, 9}, true},
		{BlockRange{6, 8}, true},
		{BlockRange{5, 10}, false},
		{BlockRange{4, 9}, false},
		{BlockRange{1, 2}, false},
	}
	for _, c := range cases {
		if got := r.Covers(c.o); got != c.want {
			t.Errorf("%v.Covers(%v) = %v, want %v", r, c.o, got, c.want)
		}
	}
}

func TestBlockRangeOverlaps(t *testing.T) {
	r := BlockRange{Min: 5, Max: 9}
	cases := []struct {
		o    BlockRange
		want bool
	}{
		{BlockRange{0, 4}, false},
		{BlockRange{0, 5}, true},
		{BlockRange{9, 20}, true},
		{BlockRange{10, 20}, false},
		{BlockRange{6, 7}, true},
	}
	for _, c := range cases {
		if got := r.Overlaps(c.o); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", r, c.o, got, c.want)
		}
		// Overlap is symmetric.
		if got := c.o.Overlaps(r); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.o, r, got, c.want)
		}
	}
}

func TestBlockRangeLen(t *testing.T) {
	if got := (BlockRange{3, 3}).Len(); got != 1 {
		t.Errorf("Len of single-block range = %d", got)
	}
	if got := (BlockRange{3, 7}).Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if got := (BlockRange{7, 3}).Len(); got != 0 {
		t.Errorf("Len of inverted range = %d, want 0", got)
	}
}

func TestBlockRangeUnion(t *testing.T) {
	got := BlockRange{5, 9}.Union(BlockRange{2, 6})
	if got != (BlockRange{2, 9}) {
		t.Errorf("Union = %v, want [2-9]", got)
	}
	got = BlockRange{1, 2}.Union(BlockRange{8, 9})
	if got != (BlockRange{1, 9}) {
		t.Errorf("Union of disjoint = %v, want [1-9]", got)
	}
}

func TestBlockRangeString(t *testing.T) {
	if got := (BlockRange{1, 5}).String(); got != "[1-5]" {
		t.Errorf("String = %q", got)
	}
}
