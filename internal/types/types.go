// Package types holds the small shared primitives of the Umzi/Wildfire
// reproduction: record identifiers, zone identifiers, hybrid begin
// timestamps, groomed-block-ID ranges and post-groom sequence numbers.
//
// These types sit below every other package (keyenc, run, core, wildfire)
// and deliberately contain no behaviour beyond encoding, comparison and
// formatting, so that the dependency graph stays a clean DAG.
package types

import (
	"encoding/binary"
	"fmt"
)

// ZoneID identifies a data organization zone of the HTAP system. The paper
// presents Umzi with two indexed zones (groomed and post-groomed) plus the
// unindexed live zone, but the structure generalizes to any number of zones
// (§3); ZoneID is an ordinal so additional zones can be configured.
type ZoneID uint8

// The zones of Wildfire's data lifecycle (Figure 1 of the paper).
const (
	// ZoneLive holds freshly committed, not-yet-groomed data. It is not
	// covered by the index (§3): the groomer runs every second, so the
	// live zone stays small and is scanned directly.
	ZoneLive ZoneID = 0
	// ZoneGroomed holds groomed blocks: columnar, shard-key organized,
	// with monotonic beginTS assigned by the groomer.
	ZoneGroomed ZoneID = 1
	// ZonePostGroomed holds post-groomed blocks: partition-key organized,
	// larger, with endTS/prevRID resolved.
	ZonePostGroomed ZoneID = 2
)

// String implements fmt.Stringer.
func (z ZoneID) String() string {
	switch z {
	case ZoneLive:
		return "live"
	case ZoneGroomed:
		return "groomed"
	case ZonePostGroomed:
		return "post-groomed"
	default:
		return fmt.Sprintf("zone(%d)", uint8(z))
	}
}

// RID identifies the exact location of an indexed record. Following
// footnote 2 of the paper, an RID is the combination of zone, block ID and
// record offset; when data evolves between zones the RID changes, which is
// why Umzi migrates index entries rather than assuming fixed RIDs.
type RID struct {
	Zone   ZoneID
	Block  uint64 // block ID within the zone
	Offset uint32 // record ordinal within the block
}

// RIDSize is the fixed wire size of an encoded RID.
const RIDSize = 1 + 8 + 4

// EncodeRID appends the 13-byte wire form of r to dst and returns the
// extended slice.
func EncodeRID(dst []byte, r RID) []byte {
	var buf [RIDSize]byte
	buf[0] = byte(r.Zone)
	binary.BigEndian.PutUint64(buf[1:9], r.Block)
	binary.BigEndian.PutUint32(buf[9:13], r.Offset)
	return append(dst, buf[:]...)
}

// DecodeRID decodes an RID from the first RIDSize bytes of b.
func DecodeRID(b []byte) (RID, error) {
	if len(b) < RIDSize {
		return RID{}, fmt.Errorf("types: short RID: %d bytes", len(b))
	}
	return RID{
		Zone:   ZoneID(b[0]),
		Block:  binary.BigEndian.Uint64(b[1:9]),
		Offset: binary.BigEndian.Uint32(b[9:13]),
	}, nil
}

// String implements fmt.Stringer.
func (r RID) String() string {
	return fmt.Sprintf("%s/%d:%d", r.Zone, r.Block, r.Offset)
}

// IsZero reports whether r is the zero RID. The zero RID is reserved as
// "no record" (e.g. prevRID of the first version of a key).
func (r RID) IsZero() bool { return r == RID{} }

// TS is a multi-version timestamp. Wildfire composes beginTS from two
// parts (§2.1): the high-order part is the groomer's timestamp and the
// low-order part is the transaction commit time within the shard replica,
// which effectively postpones commit time to groom time while keeping
// beginTS monotonically increasing across groom cycles.
type TS uint64

// MaxTS is the largest timestamp; queries at MaxTS see all versions.
const MaxTS = TS(^uint64(0))

const tsCommitBits = 24

// MakeTS builds a hybrid timestamp from a groom-cycle sequence number and a
// per-cycle commit sequence. commitSeq must fit in 24 bits (16M commits per
// groom cycle); higher bits are truncated defensively.
func MakeTS(groomSeq uint64, commitSeq uint32) TS {
	return TS(groomSeq<<tsCommitBits | uint64(commitSeq)&(1<<tsCommitBits-1))
}

// GroomSeq extracts the groom-cycle part of the timestamp.
func (t TS) GroomSeq() uint64 { return uint64(t) >> tsCommitBits }

// CommitSeq extracts the per-cycle commit sequence part of the timestamp.
func (t TS) CommitSeq() uint32 { return uint32(uint64(t) & (1<<tsCommitBits - 1)) }

// String implements fmt.Stringer.
func (t TS) String() string {
	if t == MaxTS {
		return "ts(max)"
	}
	return fmt.Sprintf("ts(%d.%d)", t.GroomSeq(), t.CommitSeq())
}

// PSN is a post-groom sequence number. Each post-groom operation is tagged
// with a PSN; the indexer tracks IndexedPSN and applies index evolve
// operations strictly in PSN order (§5.4, Figure 5).
type PSN uint64

// BlockRange is an inclusive range [Min,Max] of groomed block IDs. Every
// index run is labeled with the range of groomed blocks it covers, in both
// zones: post-groomed runs keep the groomed-block range of the data they
// were evolved from so that coverage can be decided with a single integer
// comparison (§5.4).
type BlockRange struct {
	Min, Max uint64
}

// Contains reports whether id falls inside the range.
func (r BlockRange) Contains(id uint64) bool { return r.Min <= id && id <= r.Max }

// Covers reports whether r fully covers o.
func (r BlockRange) Covers(o BlockRange) bool { return r.Min <= o.Min && o.Max <= r.Max }

// Overlaps reports whether the two ranges intersect.
func (r BlockRange) Overlaps(o BlockRange) bool { return r.Min <= o.Max && o.Min <= r.Max }

// Len returns the number of block IDs in the range.
func (r BlockRange) Len() uint64 {
	if r.Max < r.Min {
		return 0
	}
	return r.Max - r.Min + 1
}

// Union returns the smallest range covering both r and o.
func (r BlockRange) Union(o BlockRange) BlockRange {
	u := r
	if o.Min < u.Min {
		u.Min = o.Min
	}
	if o.Max > u.Max {
		u.Max = o.Max
	}
	return u
}

// String implements fmt.Stringer.
func (r BlockRange) String() string { return fmt.Sprintf("[%d-%d]", r.Min, r.Max) }
