package run

import (
	"fmt"

	"umzi/internal/storage"
)

// LoadHeader fetches and parses just the header block of a run object in
// shared storage: a footer read plus a header read, no data-block traffic.
// This is what recovery and cache-manager purging rely on — a purged run
// keeps only its header locally (§6.2).
func LoadHeader(store storage.ObjectStore, name string) (*Header, error) {
	size, err := store.Size(name)
	if err != nil {
		return nil, err
	}
	if size < footerSize {
		return nil, fmt.Errorf("run: object %s too small (%d bytes)", name, size)
	}
	tail, err := store.GetRange(name, size-footerSize, footerSize)
	if err != nil {
		return nil, err
	}
	off, l, err := ParseFooter(tail)
	if err != nil {
		return nil, fmt.Errorf("run: object %s: %w", name, err)
	}
	if off+uint64(l)+footerSize > uint64(size) {
		return nil, fmt.Errorf("run: object %s: header extent out of range", name)
	}
	hdr, err := store.GetRange(name, int64(off), int64(l))
	if err != nil {
		return nil, err
	}
	h, err := ParseHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("run: object %s: %w", name, err)
	}
	return h, nil
}

// StoreSource reads data blocks straight from shared storage with
// block-granular GetRange calls. The core package layers the SSD cache on
// top; StoreSource is the cache-miss path and the test path.
type StoreSource struct {
	Store storage.ObjectStore
	Name  string
	Index []BlockInfo
}

// NewStoreSource builds a source for the named object using the parsed
// header's block index.
func NewStoreSource(store storage.ObjectStore, name string, h *Header) *StoreSource {
	return &StoreSource{Store: store, Name: name, Index: h.BlockIndex}
}

// FetchBlock implements BlockSource.
func (s *StoreSource) FetchBlock(i uint32) ([]byte, error) {
	if int(i) >= len(s.Index) {
		return nil, fmt.Errorf("run: block %d out of range (%d blocks)", i, len(s.Index))
	}
	bi := s.Index[i]
	return s.Store.GetRange(s.Name, int64(bi.Off), int64(bi.Len))
}

// Release implements BlockSource (no-op: nothing is pinned).
func (s *StoreSource) Release(uint32) {}

// Open loads a run's header from shared storage and returns a reader whose
// blocks are fetched directly from the store.
func Open(store storage.ObjectStore, name string) (*Reader, error) {
	h, err := LoadHeader(store, name)
	if err != nil {
		return nil, err
	}
	return NewReader(h, NewStoreSource(store, name, h)), nil
}
