package run

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"umzi/internal/keyenc"
)

// BlockSource supplies the raw bytes of a run's data blocks. The core
// package wires sources through the SSD cache and shared storage; tests
// and non-persisted runs use MemSource. Sources must be safe for
// concurrent use.
type BlockSource interface {
	// FetchBlock returns the raw bytes of data block i.
	FetchBlock(i uint32) ([]byte, error)
	// Release tells the source the caller is done with block i (used to
	// unpin query-fetched blocks, §7). Implementations may ignore it.
	Release(i uint32)
}

// MemSource serves blocks from an in-memory copy of the whole run object.
// Non-persisted runs (§6.1) and unit tests use it.
type MemSource struct {
	Data   []byte
	Blocks []BlockInfo
}

// NewMemSource builds a MemSource from a serialized run object and its
// parsed header.
func NewMemSource(data []byte, h *Header) *MemSource {
	return &MemSource{Data: data, Blocks: h.BlockIndex}
}

// FetchBlock implements BlockSource.
func (s *MemSource) FetchBlock(i uint32) ([]byte, error) {
	if int(i) >= len(s.Blocks) {
		return nil, fmt.Errorf("run: block %d out of range (%d blocks)", i, len(s.Blocks))
	}
	bi := s.Blocks[i]
	end := bi.Off + uint64(bi.Len)
	if end > uint64(len(s.Data)) {
		return nil, fmt.Errorf("run: block %d extends past object end", i)
	}
	return s.Data[bi.Off:end], nil
}

// Release implements BlockSource (no-op).
func (s *MemSource) Release(uint32) {}

// Reader provides sorted access to one immutable run.
type Reader struct {
	h   *Header
	src BlockSource
}

// NewReader wraps a parsed header and a block source.
func NewReader(h *Header, src BlockSource) *Reader {
	return &Reader{h: h, src: src}
}

// OpenObject parses a complete serialized run held in memory and returns a
// reader over it.
func OpenObject(data []byte) (*Reader, error) {
	h, err := ParseObject(data)
	if err != nil {
		return nil, err
	}
	return NewReader(h, NewMemSource(data, h)), nil
}

// Header returns the run's parsed header.
func (r *Reader) Header() *Header { return r.h }

// Entries returns the number of entries in the run.
func (r *Reader) Entries() uint64 { return r.h.Entries }

// parsedBlock is a decoded data block: entry byte offsets plus payload.
type parsedBlock struct {
	idx     uint32
	data    []byte
	offsets []uint32 // intra-block byte offset of each entry
}

func parseBlock(idx uint32, data []byte) (*parsedBlock, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("run: block %d too short", idx)
	}
	count := binary.BigEndian.Uint32(data[len(data)-4:])
	tail := 4 + 4*int(count)
	if tail > len(data) {
		return nil, fmt.Errorf("run: block %d offset table overruns block", idx)
	}
	offBase := len(data) - tail
	offsets := make([]uint32, count)
	for i := range offsets {
		offsets[i] = binary.BigEndian.Uint32(data[offBase+4*i:])
		if int(offsets[i]) >= offBase {
			return nil, fmt.Errorf("run: block %d entry %d offset out of range", idx, i)
		}
	}
	return &parsedBlock{idx: idx, data: data[:offBase], offsets: offsets}, nil
}

func (pb *parsedBlock) entry(i int) (Entry, error) {
	end := len(pb.data)
	if i+1 < len(pb.offsets) {
		end = int(pb.offsets[i+1])
	}
	e, _, err := decodeEntry(pb.data[pb.offsets[i]:end])
	if err != nil {
		return Entry{}, fmt.Errorf("run: block %d entry %d: %w", pb.idx, i, err)
	}
	return e, nil
}

func (r *Reader) fetchParsed(idx uint32) (*parsedBlock, error) {
	raw, err := r.src.FetchBlock(idx)
	if err != nil {
		return nil, err
	}
	return parseBlock(idx, raw)
}

// blockForOrdinal returns the index of the data block containing the
// entry with the given ordinal.
func (r *Reader) blockForOrdinal(ord uint64) int {
	bi := r.h.BlockIndex
	return sort.Search(len(bi), func(i int) bool { return bi[i].StartOrd > ord }) - 1
}

// iterBlockCacheCap bounds the parsed blocks an iterator retains. Binary
// searches probe O(log n) scattered blocks; caching them avoids re-parsing
// the offset footer on every probe, while the cap keeps long scans from
// accumulating every block they pass through.
const iterBlockCacheCap = 32

// SeekGE positions a fresh iterator at the first entry >= (k.Hash, k.Key)
// in entry order, i.e. the first entry of the newest version group whose
// key is >= the bound. The offset array narrows the initial binary-search
// range exactly as §7.1.1 describes.
func (r *Reader) SeekGE(k SearchKey) (*Iter, error) {
	it := &Iter{r: r}
	if err := it.SeekGE(k); err != nil {
		it.close()
		return nil, err
	}
	return it, nil
}

// SeekGE repositions the iterator, keeping its parsed-block cache.
// Batched lookups reuse one iterator per run so that sorted keys landing
// in the same data blocks amortize fetch and parse costs — the mechanism
// behind §8.3.2's "no additional I/O is required to fetch that block
// again for looking up other keys in the batch".
func (it *Iter) SeekGE(k SearchKey) error {
	r := it.r
	lo, hi := uint64(0), r.h.Entries
	if r.h.OffsetArray != nil {
		b := keyenc.HashPrefix(k.Hash, r.h.Def.HashBits)
		lo = r.h.OffsetArray[b]
		hi = r.h.OffsetArray[b+1]
		// Entries with a larger prefix can still be < k only within the
		// same bucket, so [lo,hi) is a correct binary-search window for
		// any key whose hash falls in bucket b.
	}
	it.err = nil
	// Binary search over ordinals: find first ord with entry >= k.
	var searchErr error
	idx := sort.Search(int(hi-lo), func(i int) bool {
		if searchErr != nil {
			return true
		}
		e, err := it.entryAt(lo + uint64(i))
		if err != nil {
			searchErr = err
			return true
		}
		return CompareToSearchKey(e, k) >= 0
	})
	if searchErr != nil {
		return searchErr
	}
	it.ord = lo + uint64(idx)
	return nil
}

// Begin returns an iterator positioned at the first entry of the run.
func (r *Reader) Begin() *Iter {
	return &Iter{r: r, ord: 0}
}

// Iter walks entries of one run in sorted order. Iterators are cheap;
// create one per run per query. Not safe for concurrent use.
type Iter struct {
	r      *Reader
	ord    uint64
	blocks map[uint32]*parsedBlock // parsed blocks, released on Close
	err    error
}

// getBlock returns the parsed data block, fetching and caching it.
func (it *Iter) getBlock(idx uint32) (*parsedBlock, error) {
	if pb, ok := it.blocks[idx]; ok {
		return pb, nil
	}
	pb, err := it.r.fetchParsed(idx)
	if err != nil {
		return nil, err
	}
	if it.blocks == nil {
		it.blocks = make(map[uint32]*parsedBlock, 8)
	}
	for len(it.blocks) >= iterBlockCacheCap {
		for k := range it.blocks {
			it.r.src.Release(k)
			delete(it.blocks, k)
			break
		}
	}
	it.blocks[idx] = pb
	return pb, nil
}

// entryAt fetches the entry with the given global ordinal.
func (it *Iter) entryAt(ord uint64) (Entry, error) {
	b := it.r.blockForOrdinal(ord)
	if b < 0 {
		return Entry{}, fmt.Errorf("run: ordinal %d before first block", ord)
	}
	pb, err := it.getBlock(uint32(b))
	if err != nil {
		return Entry{}, err
	}
	local := int(ord - it.r.h.BlockIndex[b].StartOrd)
	if local < 0 || local >= len(pb.offsets) {
		return Entry{}, fmt.Errorf("run: ordinal %d outside block %d", ord, b)
	}
	return pb.entry(local)
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.err == nil && it.ord < it.r.h.Entries }

// Err returns the first error the iterator encountered, if any.
func (it *Iter) Err() error { return it.err }

// Entry returns the current entry. Valid must be true.
func (it *Iter) Entry() (Entry, error) {
	if !it.Valid() {
		if it.err != nil {
			return Entry{}, it.err
		}
		return Entry{}, fmt.Errorf("run: iterator exhausted")
	}
	e, err := it.entryAt(it.ord)
	if err != nil {
		it.err = err
		return Entry{}, err
	}
	return e, nil
}

// Next advances to the following entry.
func (it *Iter) Next() { it.ord++ }

// Ordinal returns the current entry ordinal (for tests and debugging).
func (it *Iter) Ordinal() uint64 { return it.ord }

// Close releases any block the iterator pinned.
func (it *Iter) Close() { it.close() }

func (it *Iter) close() {
	for idx := range it.blocks {
		it.r.src.Release(idx)
	}
	it.blocks = nil
}

// MayContain applies the synopsis check of §7: the run can be skipped if
// some key column's queried range does not overlap the [min,max] range
// recorded in the header. cols maps key-column ordinal to the queried
// bound (encoded ascending); entries with nil Lo/Hi are unconstrained.
type ColumnBound struct {
	Lo, Hi []byte // encoded inclusive bounds; nil = unbounded
}

// MayContain reports whether the run could contain entries matching the
// per-key-column bounds. An empty run matches nothing.
func (r *Reader) MayContain(bounds []ColumnBound) bool {
	return HeaderMayContain(r.h, bounds)
}

// HeaderMayContain is MayContain on a bare header, usable before deciding
// to fetch any data block.
func HeaderMayContain(h *Header, bounds []ColumnBound) bool {
	if h.Entries == 0 {
		return false
	}
	for i, b := range bounds {
		if i >= len(h.SynMin) || h.SynMin[i] == nil {
			continue
		}
		if b.Lo != nil && bytes.Compare(b.Lo, h.SynMax[i]) > 0 {
			return false
		}
		if b.Hi != nil && bytes.Compare(b.Hi, h.SynMin[i]) < 0 {
			return false
		}
	}
	return true
}
