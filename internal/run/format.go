package run

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Physical layout of a serialized run (one immutable storage object):
//
//	[data block 0][data block 1]...[data block B-1][header][footer]
//
// Data block:  [entry 0]...[entry k-1][u32 offset × k][u32 k]
// Entry:       u64 hash | u16 keyLen | key | u64 beginTS | RID | u16 inclLen | incl
// Footer:      u64 headerOff | u32 headerLen | magic "UMZIRUN1"
//
// The header travels last so the builder can stream data blocks without
// knowing counts up front, exactly like SSTable footers; readers fetch the
// footer, then the header, then individual data blocks on demand.

const (
	runMagic   = "UMZIRUN1"
	footerSize = 8 + 4 + 8

	// DefaultBlockSize is the target data-block size. The paper uses
	// fixed-size data blocks; blocks here are sealed at the entry boundary
	// that first reaches the target, so all blocks are within one entry of
	// the target (oversized single-entry blocks excepted).
	DefaultBlockSize = 32 * 1024
)

// Meta is the run-level metadata carried in the header block.
type Meta struct {
	Zone   types.ZoneID
	Level  uint16
	Blocks types.BlockRange // groomed block IDs this run covers (§4.3)
	// PSN records the post-groom sequence number that produced this run
	// (post-groomed zone only; zero elsewhere). Recovery uses the maximum
	// PSN over post-groomed runs to restore IndexedPSN after a crash
	// that lost the meta object write (§5.4–§5.5).
	PSN types.PSN
	// Ancestors lists the storage object names of persisted ancestor runs
	// that must not be deleted until this run (living in a non-persisted
	// level) is merged into a persisted level again (§6.1).
	Ancestors []string
}

// BlockInfo locates one data block inside the run object and carries the
// separators that make ordinal-based binary search possible.
type BlockInfo struct {
	Off       uint64 // byte offset of the block in the object
	Len       uint32 // byte length of the block
	StartOrd  uint64 // ordinal of the block's first entry
	FirstHash uint64 // hash of the block's first entry
	FirstKey  []byte // key of the block's first entry
}

// Header is the parsed header block of a run.
type Header struct {
	Meta       Meta
	Def        Def
	Entries    uint64
	BlockSize  uint32
	DataEnd    uint64 // byte offset where data blocks end (== header offset)
	BlockIndex []BlockInfo
	// OffsetArray[b] is the ordinal of the first entry whose hash prefix
	// (top HashBits bits) is >= b; len == 2^HashBits+1 with the final
	// element equal to Entries, so bucket b spans
	// [OffsetArray[b], OffsetArray[b+1]). Nil when HashBits == 0.
	OffsetArray []uint64
	// SynMin/SynMax hold the per-key-column min/max encoded segments
	// (the synopsis of §4.2). Empty for an empty run.
	SynMin, SynMax [][]byte
}

// Builder accumulates entries and serializes a run. Entries may be added
// in any order; Finish sorts them. For pre-sorted inputs (merges) the sort
// is a no-op verification pass.
type Builder struct {
	def       Def
	meta      Meta
	blockSize uint32
	entries   []Entry
}

// NewBuilder returns a builder for one run. blockSize <= 0 selects
// DefaultBlockSize.
func NewBuilder(def Def, meta Meta, blockSize int) (*Builder, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Builder{def: def, meta: meta, blockSize: uint32(blockSize)}, nil
}

// Add appends a pre-encoded entry.
func (b *Builder) Add(e Entry) { b.entries = append(b.entries, e) }

// AddValues encodes and appends an entry from raw column values.
func (b *Builder) AddValues(eq, sortv, incl []keyenc.Value, ts types.TS, rid types.RID) error {
	e, err := MakeEntry(b.def, eq, sortv, incl, ts, rid)
	if err != nil {
		return err
	}
	b.Add(e)
	return nil
}

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Finish sorts the entries, serializes the run and returns the raw object
// bytes together with the parsed header (so callers avoid an immediate
// re-parse). The builder must not be reused.
func (b *Builder) Finish() ([]byte, *Header, error) {
	// Index build sorts entries by hash, key columns and descending
	// beginTS (§5.2).
	sort.SliceStable(b.entries, func(i, j int) bool {
		return Compare(b.entries[i], b.entries[j]) < 0
	})

	h := &Header{
		Meta:      b.meta,
		Def:       b.def,
		Entries:   uint64(len(b.entries)),
		BlockSize: b.blockSize,
	}

	keyKinds := b.def.KeyKinds()
	h.SynMin = make([][]byte, len(keyKinds))
	h.SynMax = make([][]byte, len(keyKinds))

	var out []byte
	var blockStart int
	var blockFirst *Entry
	var blockStartOrd uint64
	entryStart := func() {
		blockStart = len(out)
	}
	entryStart()
	var offsets []uint32

	sealBlock := func() {
		if len(offsets) == 0 {
			return
		}
		for _, o := range offsets {
			out = binary.BigEndian.AppendUint32(out, o)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(offsets)))
		h.BlockIndex = append(h.BlockIndex, BlockInfo{
			Off:       uint64(blockStart),
			Len:       uint32(len(out) - blockStart),
			StartOrd:  blockStartOrd,
			FirstHash: blockFirst.Hash,
			FirstKey:  append([]byte(nil), blockFirst.Key...),
		})
		blockStartOrd += uint64(len(offsets))
		offsets = offsets[:0]
		blockFirst = nil
		entryStart()
	}

	for i := range b.entries {
		e := &b.entries[i]
		// Synopsis: track min/max per key column (on the order-preserving
		// encodings, so comparisons are raw byte compares).
		err := columnSegments(e.Key, keyKinds, func(col int, seg []byte) {
			if h.SynMin[col] == nil || bytes.Compare(seg, h.SynMin[col]) < 0 {
				h.SynMin[col] = append([]byte(nil), seg...)
			}
			if h.SynMax[col] == nil || bytes.Compare(seg, h.SynMax[col]) > 0 {
				h.SynMax[col] = append([]byte(nil), seg...)
			}
		})
		if err != nil {
			return nil, nil, fmt.Errorf("run: entry %d: %w", i, err)
		}

		encLen := entryEncodedLen(e)
		// Seal the current block if this entry would overflow the target
		// and the block is non-empty (single oversized entries get their
		// own block).
		if len(offsets) > 0 && len(out)-blockStart+encLen+4*(len(offsets)+1)+4 > int(b.blockSize) {
			sealBlock()
		}
		if blockFirst == nil {
			blockFirst = e
		}
		offsets = append(offsets, uint32(len(out)-blockStart))
		out = appendEntry(out, e)
	}
	sealBlock()
	h.DataEnd = uint64(len(out))

	// Offset array (Figure 2b): bucket b -> first ordinal with prefix >= b.
	if b.def.HashBits > 0 {
		n := 1 << b.def.HashBits
		h.OffsetArray = make([]uint64, n+1)
		next := 0
		for i := range b.entries {
			p := int(keyenc.HashPrefix(b.entries[i].Hash, b.def.HashBits))
			for next <= p {
				h.OffsetArray[next] = uint64(i)
				next++
			}
		}
		for ; next <= n; next++ {
			h.OffsetArray[next] = uint64(len(b.entries))
		}
	}

	hdr := marshalHeader(h)
	out = append(out, hdr...)
	out = binary.BigEndian.AppendUint64(out, h.DataEnd)
	out = binary.BigEndian.AppendUint32(out, uint32(len(hdr)))
	out = append(out, runMagic...)
	return out, h, nil
}

func entryEncodedLen(e *Entry) int {
	return 8 + 2 + len(e.Key) + 8 + types.RIDSize + 2 + len(e.Included)
}

func appendEntry(out []byte, e *Entry) []byte {
	out = binary.BigEndian.AppendUint64(out, e.Hash)
	out = binary.BigEndian.AppendUint16(out, uint16(len(e.Key)))
	out = append(out, e.Key...)
	out = binary.BigEndian.AppendUint64(out, uint64(e.BeginTS))
	out = types.EncodeRID(out, e.RID)
	out = binary.BigEndian.AppendUint16(out, uint16(len(e.Included)))
	out = append(out, e.Included...)
	return out
}

func decodeEntry(b []byte) (Entry, int, error) {
	var e Entry
	if len(b) < 8+2 {
		return e, 0, fmt.Errorf("run: truncated entry header")
	}
	e.Hash = binary.BigEndian.Uint64(b)
	keyLen := int(binary.BigEndian.Uint16(b[8:]))
	off := 10
	if len(b) < off+keyLen+8+types.RIDSize+2 {
		return e, 0, fmt.Errorf("run: truncated entry body")
	}
	e.Key = b[off : off+keyLen]
	off += keyLen
	e.BeginTS = types.TS(binary.BigEndian.Uint64(b[off:]))
	off += 8
	rid, err := types.DecodeRID(b[off:])
	if err != nil {
		return e, 0, err
	}
	e.RID = rid
	off += types.RIDSize
	inclLen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+inclLen {
		return e, 0, fmt.Errorf("run: truncated included columns")
	}
	e.Included = b[off : off+inclLen]
	off += inclLen
	return e, off, nil
}
