// Package run implements Umzi's index-run format (§4.2 of the paper,
// Figure 2): an immutable sorted table of index entries stored as a header
// block plus fixed-target-size data blocks.
//
// Each entry carries the hash of the equality columns, the memcmp-
// comparable composite key (equality columns then sort columns), the
// multi-version beginTS, the RID of the indexed record, and any included
// columns. Entries are ordered by hash, then key, then *descending*
// beginTS so that the most recent version of a key is reached first.
//
// The header block holds the run's metadata: the covered range of groomed
// block IDs, the merge level, a per-key-column min/max synopsis used to
// prune runs during queries, an offset array of 2^n entry ordinals indexed
// by the top n bits of the hash (Figure 2b) that narrows binary searches,
// and a block index mapping data blocks to their byte extents and first
// keys so that variable-length entries still support ordinal addressing.
package run

import (
	"bytes"
	"fmt"

	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Def describes the key layout of an index as the run format needs it:
// the kinds of the equality, sort and included columns, plus the size of
// the per-run hash offset array.
type Def struct {
	EqualityKinds []keyenc.Kind
	SortKinds     []keyenc.Kind
	IncludedKinds []keyenc.Kind
	// HashBits selects an offset array of 2^HashBits buckets. Zero
	// disables the offset array (pure range index or ablation runs).
	HashBits uint8
}

// Validate checks the definition for internal consistency.
func (d Def) Validate() error {
	if len(d.EqualityKinds)+len(d.SortKinds) == 0 {
		return fmt.Errorf("run: index needs at least one key column")
	}
	if d.HashBits > 24 {
		return fmt.Errorf("run: HashBits %d too large (max 24)", d.HashBits)
	}
	if len(d.EqualityKinds) == 0 && d.HashBits != 0 {
		return fmt.Errorf("run: offset array requires equality columns")
	}
	for _, ks := range [][]keyenc.Kind{d.EqualityKinds, d.SortKinds, d.IncludedKinds} {
		for _, k := range ks {
			switch k {
			case keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
				keyenc.KindBytes, keyenc.KindString, keyenc.KindBool:
			default:
				return fmt.Errorf("run: invalid column kind %v", k)
			}
		}
	}
	return nil
}

// KeyKinds returns the kinds of all key columns (equality then sort).
func (d Def) KeyKinds() []keyenc.Kind {
	kinds := make([]keyenc.Kind, 0, len(d.EqualityKinds)+len(d.SortKinds))
	kinds = append(kinds, d.EqualityKinds...)
	kinds = append(kinds, d.SortKinds...)
	return kinds
}

// NumKeyCols returns the number of key columns.
func (d Def) NumKeyCols() int { return len(d.EqualityKinds) + len(d.SortKinds) }

// Entry is one index row: the logical view of Figure 2a.
type Entry struct {
	Hash     uint64   // hash of the equality-column values (0 if none)
	Key      []byte   // keyenc composite of equality then sort columns
	BeginTS  types.TS // version timestamp; entries sort newest-first
	RID      types.RID
	Included []byte // keyenc composite of included columns (may be empty)
}

// Compare orders entries by (hash asc, key asc, beginTS desc). RID and
// included columns never participate in ordering.
func Compare(a, b Entry) int {
	switch {
	case a.Hash < b.Hash:
		return -1
	case a.Hash > b.Hash:
		return 1
	}
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.BeginTS > b.BeginTS: // descending: newer sorts first
		return -1
	case a.BeginTS < b.BeginTS:
		return 1
	}
	return 0
}

// SameKey reports whether two entries index the same key (hash and key
// bytes equal), regardless of version.
func SameKey(a, b Entry) bool {
	return a.Hash == b.Hash && bytes.Equal(a.Key, b.Key)
}

// MakeEntry encodes an entry from raw column values. eq and sortv must
// match the definition's kinds; incl may be nil when the index has no
// included columns.
func MakeEntry(def Def, eq, sortv, incl []keyenc.Value, ts types.TS, rid types.RID) (Entry, error) {
	if len(eq) != len(def.EqualityKinds) {
		return Entry{}, fmt.Errorf("run: %d equality values, want %d", len(eq), len(def.EqualityKinds))
	}
	if len(sortv) != len(def.SortKinds) {
		return Entry{}, fmt.Errorf("run: %d sort values, want %d", len(sortv), len(def.SortKinds))
	}
	if len(incl) != len(def.IncludedKinds) {
		return Entry{}, fmt.Errorf("run: %d included values, want %d", len(incl), len(def.IncludedKinds))
	}
	key := keyenc.AppendComposite(nil, eq...)
	hash := keyenc.HashBytes(key) // hash covers the equality prefix only
	key = keyenc.AppendComposite(key, sortv...)
	var inclEnc []byte
	if len(incl) > 0 {
		inclEnc = keyenc.AppendComposite(nil, incl...)
	}
	return Entry{Hash: hash, Key: key, BeginTS: ts, RID: rid, Included: inclEnc}, nil
}

// SearchKey is the concatenated bound used to search runs (§7.1.1): the
// hash plus the encoded equality values plus an encoded sort-column bound.
type SearchKey struct {
	Hash uint64
	Key  []byte
}

// MakeSearchKey builds the search bound for a query that pins all equality
// columns and constrains the (single leading, or all) sort columns.
// sortBound may be a prefix of the sort columns; an empty sortBound spans
// the whole equality group.
func MakeSearchKey(def Def, eq []keyenc.Value, sortBound []keyenc.Value) (SearchKey, error) {
	if len(eq) != len(def.EqualityKinds) {
		return SearchKey{}, fmt.Errorf("run: %d equality values, want %d", len(eq), len(def.EqualityKinds))
	}
	if len(sortBound) > len(def.SortKinds) {
		return SearchKey{}, fmt.Errorf("run: %d sort bounds, index has %d sort columns", len(sortBound), len(def.SortKinds))
	}
	key := keyenc.AppendComposite(nil, eq...)
	hash := keyenc.HashBytes(key)
	key = keyenc.AppendComposite(key, sortBound...)
	return SearchKey{Hash: hash, Key: key}, nil
}

// CompareToSearchKey orders an entry against a search bound. An entry with
// key bytes extending beyond the bound compares greater when the bound is
// its prefix, which is exactly the lower-bound semantics binary search
// needs; upper bounds use prefix-aware comparison in the iterator.
func CompareToSearchKey(e Entry, k SearchKey) int {
	switch {
	case e.Hash < k.Hash:
		return -1
	case e.Hash > k.Hash:
		return 1
	}
	return bytes.Compare(e.Key, k.Key)
}

// HasPrefix reports whether the entry's key starts with the search key's
// bytes and shares its hash. Range scans use it to stop at the end of an
// equality group and to match sort-column prefixes.
func HasPrefix(e Entry, k SearchKey) bool {
	return e.Hash == k.Hash && bytes.HasPrefix(e.Key, k.Key)
}

// columnSegments walks the per-column encoded segments of a composite key
// and invokes fn with each column ordinal and its raw encoded bytes. It
// returns an error on malformed keys. This powers synopsis maintenance
// without decoding values.
func columnSegments(key []byte, kinds []keyenc.Kind, fn func(col int, seg []byte)) error {
	off := 0
	for i, k := range kinds {
		var n int
		switch k {
		case keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64:
			n = 8
		case keyenc.KindBool:
			n = 1
		case keyenc.KindBytes, keyenc.KindString:
			// Scan for the 0x00 0x01 terminator, honoring 0x00 0xFF escapes.
			j := off
			for n == 0 {
				if j >= len(key) {
					return fmt.Errorf("run: unterminated key column %d", i)
				}
				if key[j] != 0x00 {
					j++
					continue
				}
				if j+1 >= len(key) {
					return fmt.Errorf("run: truncated escape in key column %d", i)
				}
				if key[j+1] == 0x01 {
					n = j + 2 - off // include the terminator in the segment
				} else {
					j += 2 // escaped 0x00
				}
			}
		default:
			return fmt.Errorf("run: invalid kind %v in key", k)
		}
		if off+n > len(key) {
			return fmt.Errorf("run: key too short for column %d", i)
		}
		fn(i, key[off:off+n])
		off += n
	}
	if off != len(key) {
		return fmt.Errorf("run: %d trailing key bytes", len(key)-off)
	}
	return nil
}
