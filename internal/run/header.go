package run

import (
	"encoding/binary"
	"fmt"

	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Header block wire format (big-endian):
//
//	magic    "UMZIHDR1"
//	version  u16
//	zone     u8
//	level    u16
//	minID    u64, maxID u64        groomed block ID range
//	psn      u64
//	entries  u64
//	blockSz  u32
//	dataEnd  u64
//	nEq u8, kinds; nSort u8, kinds; nIncl u8, kinds
//	hashBits u8
//	offset array: (2^hashBits + 1) × u64   (absent if hashBits == 0)
//	synopsis: nKeyCols × { has u8, minLen u32 + bytes, maxLen u32 + bytes }
//	block index: u32 count × { off u64, len u32, startOrd u64,
//	                            firstHash u64, keyLen u16 + bytes }
//	ancestors: u16 count × { u16 len + name }

const headerMagic = "UMZIHDR1"

func marshalHeader(h *Header) []byte {
	out := make([]byte, 0, 256+len(h.OffsetArray)*8)
	out = append(out, headerMagic...)
	out = binary.BigEndian.AppendUint16(out, 1)
	out = append(out, byte(h.Meta.Zone))
	out = binary.BigEndian.AppendUint16(out, h.Meta.Level)
	out = binary.BigEndian.AppendUint64(out, h.Meta.Blocks.Min)
	out = binary.BigEndian.AppendUint64(out, h.Meta.Blocks.Max)
	out = binary.BigEndian.AppendUint64(out, uint64(h.Meta.PSN))
	out = binary.BigEndian.AppendUint64(out, h.Entries)
	out = binary.BigEndian.AppendUint32(out, h.BlockSize)
	out = binary.BigEndian.AppendUint64(out, h.DataEnd)

	appendKinds := func(kinds []keyenc.Kind) {
		out = append(out, byte(len(kinds)))
		for _, k := range kinds {
			out = append(out, byte(k))
		}
	}
	appendKinds(h.Def.EqualityKinds)
	appendKinds(h.Def.SortKinds)
	appendKinds(h.Def.IncludedKinds)

	out = append(out, h.Def.HashBits)
	if h.Def.HashBits > 0 {
		for _, o := range h.OffsetArray {
			out = binary.BigEndian.AppendUint64(out, o)
		}
	}

	for i := range h.SynMin {
		if h.SynMin[i] == nil {
			out = append(out, 0)
			continue
		}
		out = append(out, 1)
		out = binary.BigEndian.AppendUint32(out, uint32(len(h.SynMin[i])))
		out = append(out, h.SynMin[i]...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(h.SynMax[i])))
		out = append(out, h.SynMax[i]...)
	}

	out = binary.BigEndian.AppendUint32(out, uint32(len(h.BlockIndex)))
	for _, bi := range h.BlockIndex {
		out = binary.BigEndian.AppendUint64(out, bi.Off)
		out = binary.BigEndian.AppendUint32(out, bi.Len)
		out = binary.BigEndian.AppendUint64(out, bi.StartOrd)
		out = binary.BigEndian.AppendUint64(out, bi.FirstHash)
		out = binary.BigEndian.AppendUint16(out, uint16(len(bi.FirstKey)))
		out = append(out, bi.FirstKey...)
	}

	out = binary.BigEndian.AppendUint16(out, uint16(len(h.Meta.Ancestors)))
	for _, a := range h.Meta.Ancestors {
		out = binary.BigEndian.AppendUint16(out, uint16(len(a)))
		out = append(out, a...)
	}
	return out
}

// ParseHeader decodes a header block produced by marshalHeader.
func ParseHeader(b []byte) (*Header, error) {
	r := &cursor{b: b}
	magic, err := r.take(8)
	if err != nil || string(magic) != headerMagic {
		return nil, fmt.Errorf("run: bad header magic")
	}
	ver, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("run: unsupported header version %d", ver)
	}
	h := &Header{}
	zone, err := r.u8()
	if err != nil {
		return nil, err
	}
	h.Meta.Zone = types.ZoneID(zone)
	if h.Meta.Level, err = r.u16(); err != nil {
		return nil, err
	}
	if h.Meta.Blocks.Min, err = r.u64(); err != nil {
		return nil, err
	}
	if h.Meta.Blocks.Max, err = r.u64(); err != nil {
		return nil, err
	}
	psn, err := r.u64()
	if err != nil {
		return nil, err
	}
	h.Meta.PSN = types.PSN(psn)
	if h.Entries, err = r.u64(); err != nil {
		return nil, err
	}
	if h.BlockSize, err = r.u32(); err != nil {
		return nil, err
	}
	if h.DataEnd, err = r.u64(); err != nil {
		return nil, err
	}

	takeKinds := func() ([]keyenc.Kind, error) {
		n, err := r.u8()
		if err != nil {
			return nil, err
		}
		kinds := make([]keyenc.Kind, n)
		for i := range kinds {
			k, err := r.u8()
			if err != nil {
				return nil, err
			}
			kinds[i] = keyenc.Kind(k)
		}
		return kinds, nil
	}
	if h.Def.EqualityKinds, err = takeKinds(); err != nil {
		return nil, err
	}
	if h.Def.SortKinds, err = takeKinds(); err != nil {
		return nil, err
	}
	if h.Def.IncludedKinds, err = takeKinds(); err != nil {
		return nil, err
	}
	if h.Def.HashBits, err = r.u8(); err != nil {
		return nil, err
	}
	if err := h.Def.Validate(); err != nil {
		return nil, err
	}

	if h.Def.HashBits > 0 {
		n := (1 << h.Def.HashBits) + 1
		h.OffsetArray = make([]uint64, n)
		for i := 0; i < n; i++ {
			if h.OffsetArray[i], err = r.u64(); err != nil {
				return nil, err
			}
		}
	}

	nKeys := h.Def.NumKeyCols()
	h.SynMin = make([][]byte, nKeys)
	h.SynMax = make([][]byte, nKeys)
	for i := 0; i < nKeys; i++ {
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		if has == 0 {
			continue
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		min, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		if n, err = r.u32(); err != nil {
			return nil, err
		}
		max, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		h.SynMin[i] = append([]byte(nil), min...)
		h.SynMax[i] = append([]byte(nil), max...)
	}

	nBlocks, err := r.u32()
	if err != nil {
		return nil, err
	}
	h.BlockIndex = make([]BlockInfo, nBlocks)
	for i := range h.BlockIndex {
		bi := &h.BlockIndex[i]
		if bi.Off, err = r.u64(); err != nil {
			return nil, err
		}
		if bi.Len, err = r.u32(); err != nil {
			return nil, err
		}
		if bi.StartOrd, err = r.u64(); err != nil {
			return nil, err
		}
		if bi.FirstHash, err = r.u64(); err != nil {
			return nil, err
		}
		kl, err := r.u16()
		if err != nil {
			return nil, err
		}
		key, err := r.take(int(kl))
		if err != nil {
			return nil, err
		}
		bi.FirstKey = append([]byte(nil), key...)
	}

	nAnc, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nAnc); i++ {
		al, err := r.u16()
		if err != nil {
			return nil, err
		}
		a, err := r.take(int(al))
		if err != nil {
			return nil, err
		}
		h.Meta.Ancestors = append(h.Meta.Ancestors, string(a))
	}
	return h, nil
}

// ParseFooter extracts the header location from the final footerSize bytes
// of a run object.
func ParseFooter(tail []byte) (headerOff uint64, headerLen uint32, err error) {
	if len(tail) < footerSize {
		return 0, 0, fmt.Errorf("run: short footer: %d bytes", len(tail))
	}
	f := tail[len(tail)-footerSize:]
	if string(f[12:20]) != runMagic {
		return 0, 0, fmt.Errorf("run: bad footer magic")
	}
	return binary.BigEndian.Uint64(f[0:8]), binary.BigEndian.Uint32(f[8:12]), nil
}

// ParseObject parses a complete in-memory run object into its header.
func ParseObject(data []byte) (*Header, error) {
	off, l, err := ParseFooter(data)
	if err != nil {
		return nil, err
	}
	if off+uint64(l) > uint64(len(data))-footerSize {
		return nil, fmt.Errorf("run: footer points outside object")
	}
	return ParseHeader(data[off : off+uint64(l)])
}

// cursor is a bounds-checked byte reader.
type cursor struct {
	b   []byte
	off int
}

func (r *cursor) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("run: truncated header (%d at %d of %d)", n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *cursor) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *cursor) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *cursor) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *cursor) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}
