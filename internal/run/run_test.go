package run

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// defI1 mirrors the paper's default index definition I1: one equality
// column, one sort column, one included column (all int64, §8.1).
func defI1() Def {
	return Def{
		EqualityKinds: []keyenc.Kind{keyenc.KindInt64},
		SortKinds:     []keyenc.Kind{keyenc.KindInt64},
		IncludedKinds: []keyenc.Kind{keyenc.KindInt64},
		HashBits:      8,
	}
}

// buildRun builds a run over n synthetic entries: device = i % devices,
// msg = i / devices, beginTS = ts(i), included = i.
func buildRun(t testing.TB, def Def, n, devices int, blockSize int) ([]byte, *Header) {
	t.Helper()
	b, err := NewBuilder(def, Meta{Zone: types.ZoneGroomed, Blocks: types.BlockRange{Min: 0, Max: uint64(n)}}, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := b.AddValues(
			[]keyenc.Value{keyenc.I64(int64(i % devices))},
			[]keyenc.Value{keyenc.I64(int64(i / devices))},
			[]keyenc.Value{keyenc.I64(int64(i))},
			types.TS(i+1), types.RID{Zone: types.ZoneGroomed, Block: 1, Offset: uint32(i)},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data, h
}

func TestDefValidate(t *testing.T) {
	cases := []struct {
		name string
		def  Def
		ok   bool
	}{
		{"I1", defI1(), true},
		{"no key columns", Def{}, false},
		{"pure hash", Def{EqualityKinds: []keyenc.Kind{keyenc.KindInt64}, HashBits: 8}, true},
		{"pure range", Def{SortKinds: []keyenc.Kind{keyenc.KindInt64}}, true},
		{"offset array without equality", Def{SortKinds: []keyenc.Kind{keyenc.KindInt64}, HashBits: 8}, false},
		{"hash bits too large", Def{EqualityKinds: []keyenc.Kind{keyenc.KindInt64}, HashBits: 25}, false},
		{"invalid kind", Def{EqualityKinds: []keyenc.Kind{keyenc.KindInvalid}}, false},
	}
	for _, c := range cases {
		err := c.def.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestEntryOrdering(t *testing.T) {
	def := defI1()
	mk := func(dev, msg int64, ts types.TS) Entry {
		e, err := MakeEntry(def, []keyenc.Value{keyenc.I64(dev)}, []keyenc.Value{keyenc.I64(msg)}, []keyenc.Value{keyenc.I64(0)}, ts, types.RID{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk(1, 1, 100)
	b := mk(1, 2, 50)
	if !(Compare(a, b) < 0) {
		t.Error("sort column must order within one equality value")
	}
	// Same key: newer (larger) beginTS sorts FIRST (descending, §4.2).
	newer := mk(1, 1, 200)
	older := mk(1, 1, 100)
	if !(Compare(newer, older) < 0) {
		t.Error("newer version must sort before older version")
	}
	if Compare(a, a) != 0 {
		t.Error("identical entries must compare equal")
	}
	if !SameKey(newer, older) || SameKey(a, b) {
		t.Error("SameKey must ignore version and respect key")
	}
}

func TestMakeEntryValidation(t *testing.T) {
	def := defI1()
	if _, err := MakeEntry(def, nil, []keyenc.Value{keyenc.I64(0)}, []keyenc.Value{keyenc.I64(0)}, 0, types.RID{}); err == nil {
		t.Error("missing equality value accepted")
	}
	if _, err := MakeEntry(def, []keyenc.Value{keyenc.I64(0)}, nil, []keyenc.Value{keyenc.I64(0)}, 0, types.RID{}); err == nil {
		t.Error("missing sort value accepted")
	}
	if _, err := MakeEntry(def, []keyenc.Value{keyenc.I64(0)}, []keyenc.Value{keyenc.I64(0)}, nil, 0, types.RID{}); err == nil {
		t.Error("missing included value accepted")
	}
}

func TestBuildAndIterateAll(t *testing.T) {
	const n = 1000
	data, h := buildRun(t, defI1(), n, 10, 1024)
	r := NewReader(h, NewMemSource(data, h))
	if r.Entries() != n {
		t.Fatalf("Entries = %d, want %d", r.Entries(), n)
	}
	if len(h.BlockIndex) < 2 {
		t.Fatalf("expected multiple data blocks, got %d", len(h.BlockIndex))
	}
	it := r.Begin()
	defer it.Close()
	var prev Entry
	count := 0
	for ; it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && Compare(prev, e) > 0 {
			t.Fatalf("entries out of order at ordinal %d", count)
		}
		prev = Entry{Hash: e.Hash, Key: append([]byte(nil), e.Key...), BeginTS: e.BeginTS}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d entries, want %d", count, n)
	}
}

func TestSeekGEFindsFirstMatch(t *testing.T) {
	const n, devices = 500, 7
	data, h := buildRun(t, defI1(), n, devices, 512)
	r := NewReader(h, NewMemSource(data, h))
	for dev := int64(0); dev < devices; dev++ {
		k, err := MakeSearchKey(h.Def, []keyenc.Value{keyenc.I64(dev)}, []keyenc.Value{keyenc.I64(3)})
		if err != nil {
			t.Fatal(err)
		}
		it, err := r.SeekGE(k)
		if err != nil {
			t.Fatal(err)
		}
		if !it.Valid() {
			t.Fatalf("device %d: seek found nothing", dev)
		}
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		if CompareToSearchKey(e, k) < 0 {
			t.Errorf("device %d: entry before search key", dev)
		}
		// The entry must be exactly (dev, 3): every device has msgs 0..n/devices.
		vals, _, err := keyenc.DecodeComposite(e.Key, h.Def.KeyKinds())
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].Int() != dev || vals[1].Int() != 3 {
			t.Errorf("seek(dev=%d,msg=3) landed on (%v,%v)", dev, vals[0], vals[1])
		}
		it.Close()
	}
}

func TestSeekGEPastEnd(t *testing.T) {
	data, h := buildRun(t, defI1(), 100, 5, 512)
	r := NewReader(h, NewMemSource(data, h))
	// Seek beyond the largest msg of one device: must land on the next
	// hash group or exhaust, never on a smaller key.
	k, err := MakeSearchKey(h.Def, []keyenc.Value{keyenc.I64(2)}, []keyenc.Value{keyenc.I64(1 << 40)})
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.SeekGE(k)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Valid() {
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		if CompareToSearchKey(e, k) < 0 {
			t.Error("seek landed before the bound")
		}
	}
}

func TestSeekMatchesNaiveScan(t *testing.T) {
	// Property: for random search keys, SeekGE lands exactly where a
	// linear scan would (invariant 2 of DESIGN.md).
	rng := rand.New(rand.NewSource(42))
	const n, devices = 800, 13
	data, h := buildRun(t, defI1(), n, devices, 700)
	r := NewReader(h, NewMemSource(data, h))

	// Materialize all entries once via full iteration.
	var all []Entry
	for it := r.Begin(); it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Entry{Hash: e.Hash, Key: append([]byte(nil), e.Key...), BeginTS: e.BeginTS, RID: e.RID})
	}

	for trial := 0; trial < 200; trial++ {
		dev := rng.Int63n(devices + 2) // sometimes absent devices
		msg := rng.Int63n(n/devices + 4)
		k, err := MakeSearchKey(h.Def, []keyenc.Value{keyenc.I64(dev)}, []keyenc.Value{keyenc.I64(msg)})
		if err != nil {
			t.Fatal(err)
		}
		wantOrd := -1
		for i, e := range all {
			if CompareToSearchKey(e, k) >= 0 {
				wantOrd = i
				break
			}
		}
		it, err := r.SeekGE(k)
		if err != nil {
			t.Fatal(err)
		}
		if wantOrd == -1 {
			if it.Valid() {
				t.Fatalf("trial %d: scan exhausted but seek found ordinal %d", trial, it.Ordinal())
			}
		} else if !it.Valid() || it.Ordinal() != uint64(wantOrd) {
			t.Fatalf("trial %d: seek ordinal %d, scan says %d", trial, it.Ordinal(), wantOrd)
		}
		it.Close()
	}
}

func TestVersionsSortNewestFirst(t *testing.T) {
	def := defI1()
	b, err := NewBuilder(def, Meta{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three versions of key (1,1) added oldest-first.
	for _, ts := range []types.TS{10, 30, 20} {
		if err := b.AddValues([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(0)}, ts, types.RID{Offset: uint32(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(h, NewMemSource(data, h))
	var got []types.TS
	for it := r.Begin(); it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e.BeginTS)
	}
	want := []types.TS{30, 20, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("version order = %v, want %v", got, want)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	_, h := buildRun(t, defI1(), 300, 9, 512)
	h.Meta.Level = 3
	h.Meta.PSN = 17
	h.Meta.Ancestors = []string{"idx/z1/L0/run-0-5", "idx/z1/L0/run-6-9"}
	enc := marshalHeader(h)
	got, err := ParseHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries != h.Entries || got.BlockSize != h.BlockSize || got.DataEnd != h.DataEnd {
		t.Errorf("scalar fields lost: %+v vs %+v", got, h)
	}
	if got.Meta.Level != 3 || got.Meta.Blocks != h.Meta.Blocks || got.Meta.Zone != h.Meta.Zone || got.Meta.PSN != 17 {
		t.Errorf("meta lost: %+v", got.Meta)
	}
	if len(got.Meta.Ancestors) != 2 || got.Meta.Ancestors[0] != h.Meta.Ancestors[0] {
		t.Errorf("ancestors lost: %v", got.Meta.Ancestors)
	}
	if len(got.OffsetArray) != len(h.OffsetArray) {
		t.Fatalf("offset array length %d vs %d", len(got.OffsetArray), len(h.OffsetArray))
	}
	for i := range h.OffsetArray {
		if got.OffsetArray[i] != h.OffsetArray[i] {
			t.Fatalf("offset array diverges at %d", i)
		}
	}
	if len(got.BlockIndex) != len(h.BlockIndex) {
		t.Fatalf("block index length %d vs %d", len(got.BlockIndex), len(h.BlockIndex))
	}
	for i := range h.BlockIndex {
		a, b := got.BlockIndex[i], h.BlockIndex[i]
		if a.Off != b.Off || a.Len != b.Len || a.StartOrd != b.StartOrd || a.FirstHash != b.FirstHash || !bytes.Equal(a.FirstKey, b.FirstKey) {
			t.Fatalf("block index %d diverges", i)
		}
	}
	for i := range h.SynMin {
		if !bytes.Equal(got.SynMin[i], h.SynMin[i]) || !bytes.Equal(got.SynMax[i], h.SynMax[i]) {
			t.Fatalf("synopsis %d diverges", i)
		}
	}
}

func TestParseHeaderCorrupt(t *testing.T) {
	_, h := buildRun(t, defI1(), 50, 5, 512)
	enc := marshalHeader(h)
	if _, err := ParseHeader(enc[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), enc...)
	copy(bad, "XXXXXXXX")
	if _, err := ParseHeader(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFooterRoundTrip(t *testing.T) {
	data, _ := buildRun(t, defI1(), 50, 5, 512)
	off, l, err := ParseFooter(data)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 || l == 0 {
		t.Errorf("footer = (%d, %d)", off, l)
	}
	if _, _, err := ParseFooter(data[:footerSize-1]); err == nil {
		t.Error("short footer accepted")
	}
	bad := append([]byte(nil), data...)
	copy(bad[len(bad)-8:], "NOTMAGIC")
	if _, _, err := ParseFooter(bad); err == nil {
		t.Error("bad footer magic accepted")
	}
}

func TestOffsetArraySemantics(t *testing.T) {
	// The offset array must satisfy: array[b] = first ordinal whose hash
	// prefix >= b, and it must bracket every entry's bucket.
	data, h := buildRun(t, defI1(), 400, 11, 512)
	r := NewReader(h, NewMemSource(data, h))
	if h.OffsetArray == nil {
		t.Fatal("no offset array despite HashBits > 0")
	}
	ord := uint64(0)
	for it := r.Begin(); it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			t.Fatal(err)
		}
		b := keyenc.HashPrefix(e.Hash, h.Def.HashBits)
		if !(h.OffsetArray[b] <= ord && ord < h.OffsetArray[b+1]) {
			t.Fatalf("ordinal %d outside its bucket window [%d,%d)", ord, h.OffsetArray[b], h.OffsetArray[b+1])
		}
		ord++
	}
	// Monotone non-decreasing, ending at Entries.
	for i := 1; i < len(h.OffsetArray); i++ {
		if h.OffsetArray[i] < h.OffsetArray[i-1] {
			t.Fatal("offset array not monotone")
		}
	}
	if h.OffsetArray[len(h.OffsetArray)-1] != h.Entries {
		t.Fatal("offset array must end at entry count")
	}
}

func TestSynopsisBounds(t *testing.T) {
	data, h := buildRun(t, defI1(), 200, 10, 512)
	r := NewReader(h, NewMemSource(data, h))

	encI64 := func(v int64) []byte { return keyenc.Append(nil, keyenc.I64(v)) }
	// Equality column (device) spans 0..9; sort column (msg) spans 0..19.
	cases := []struct {
		name   string
		bounds []ColumnBound
		want   bool
	}{
		{"inside", []ColumnBound{{Lo: encI64(5), Hi: encI64(5)}}, true},
		{"below", []ColumnBound{{Lo: encI64(-10), Hi: encI64(-1)}}, false},
		{"above", []ColumnBound{{Lo: encI64(10), Hi: encI64(99)}}, false},
		{"overlap low edge", []ColumnBound{{Lo: encI64(-5), Hi: encI64(0)}}, true},
		{"unbounded", []ColumnBound{{}}, true},
		{"sort col above", []ColumnBound{{}, {Lo: encI64(20), Hi: nil}}, false},
		{"sort col inside", []ColumnBound{{}, {Lo: encI64(0), Hi: encI64(3)}}, true},
	}
	for _, c := range cases {
		if got := r.MayContain(c.bounds); got != c.want {
			t.Errorf("%s: MayContain = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSynopsisEmptyRun(t *testing.T) {
	b, err := NewBuilder(defI1(), Meta{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(h, NewMemSource(data, h))
	if r.MayContain([]ColumnBound{{}}) {
		t.Error("empty run must match nothing")
	}
	if r.Entries() != 0 || len(h.BlockIndex) != 0 {
		t.Error("empty run should have no blocks")
	}
}

func TestLoadFromObjectStore(t *testing.T) {
	store := NewMemObjectStore(t)
	data, h := buildRun(t, defI1(), 300, 6, 512)
	if err := store.Put("idx/z1/L0/run-0-300", data); err != nil {
		t.Fatal(err)
	}
	r, err := Open(store, "idx/z1/L0/run-0-300")
	if err != nil {
		t.Fatal(err)
	}
	if r.Entries() != 300 {
		t.Fatalf("Entries = %d", r.Entries())
	}
	// Compare a full iteration against the in-memory reader.
	mem := NewReader(h, NewMemSource(data, h))
	itS, itM := r.Begin(), mem.Begin()
	for itM.Valid() {
		if !itS.Valid() {
			t.Fatal("store-backed reader exhausted early")
		}
		a, err := itS.Entry()
		if err != nil {
			t.Fatal(err)
		}
		b, err := itM.Entry()
		if err != nil {
			t.Fatal(err)
		}
		if Compare(a, b) != 0 || a.RID != b.RID || !bytes.Equal(a.Included, b.Included) {
			t.Fatal("store-backed reader diverges from memory reader")
		}
		itS.Next()
		itM.Next()
	}
	if itS.Valid() {
		t.Fatal("store-backed reader has extra entries")
	}
}

// NewMemObjectStore is a small helper so run tests don't depend on the
// storage package's test helpers.
func NewMemObjectStore(t *testing.T) storage.ObjectStore {
	t.Helper()
	return storage.NewMemStore(storage.LatencyModel{})
}

func TestLoadHeaderErrors(t *testing.T) {
	store := NewMemObjectStore(t)
	if _, err := LoadHeader(store, "missing"); err == nil {
		t.Error("LoadHeader of missing object: want error")
	}
	if err := store.Put("tiny", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHeader(store, "tiny"); err == nil {
		t.Error("LoadHeader of tiny object: want error")
	}
}

func TestIncludedColumnsRoundTrip(t *testing.T) {
	def := Def{
		EqualityKinds: []keyenc.Kind{keyenc.KindString},
		SortKinds:     []keyenc.Kind{keyenc.KindUint64},
		IncludedKinds: []keyenc.Kind{keyenc.KindFloat64, keyenc.KindString},
		HashBits:      4,
	}
	b, err := NewBuilder(def, Meta{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = b.AddValues(
		[]keyenc.Value{keyenc.Str("sensor-1")},
		[]keyenc.Value{keyenc.U64(7)},
		[]keyenc.Value{keyenc.F64(21.5), keyenc.Str("ok")},
		types.TS(1), types.RID{Zone: types.ZoneGroomed, Block: 2, Offset: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(h, NewMemSource(data, h))
	it := r.Begin()
	e, err := it.Entry()
	if err != nil {
		t.Fatal(err)
	}
	incl, _, err := keyenc.DecodeComposite(e.Included, def.IncludedKinds)
	if err != nil {
		t.Fatal(err)
	}
	if incl[0].Float() != 21.5 || string(incl[1].Bytes()) != "ok" {
		t.Errorf("included columns = %v", incl)
	}
	if e.RID != (types.RID{Zone: types.ZoneGroomed, Block: 2, Offset: 3}) {
		t.Errorf("RID = %v", e.RID)
	}
}

func TestOversizedEntryGetsOwnBlock(t *testing.T) {
	def := Def{
		EqualityKinds: []keyenc.Kind{keyenc.KindBytes},
		HashBits:      4,
	}
	b, err := NewBuilder(def, Meta{}, 64) // tiny target block
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{'x'}, 500)
	if err := b.AddValues([]keyenc.Value{keyenc.Raw(big)}, nil, nil, 1, types.RID{}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddValues([]keyenc.Value{keyenc.Raw([]byte("small"))}, nil, nil, 1, types.RID{}); err != nil {
		t.Fatal(err)
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(h, NewMemSource(data, h))
	count := 0
	for it := r.Begin(); it.Valid(); it.Next() {
		if _, err := it.Entry(); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 2 {
		t.Fatalf("iterated %d entries, want 2", count)
	}
	if len(h.BlockIndex) != 2 {
		t.Fatalf("expected 2 blocks (oversize isolation), got %d", len(h.BlockIndex))
	}
}

func TestNoHashBitsPureRangeIndex(t *testing.T) {
	def := Def{SortKinds: []keyenc.Kind{keyenc.KindInt64}}
	b, err := NewBuilder(def, Meta{}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.AddValues(nil, []keyenc.Value{keyenc.I64(int64(i))}, nil, types.TS(i+1), types.RID{Offset: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if h.OffsetArray != nil {
		t.Error("pure range index must have no offset array")
	}
	r := NewReader(h, NewMemSource(data, h))
	k, err := MakeSearchKey(def, nil, []keyenc.Value{keyenc.I64(42)})
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.SeekGE(k)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	e, err := it.Entry()
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := keyenc.DecodeComposite(e.Key, def.KeyKinds())
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Int() != 42 {
		t.Errorf("seek(42) landed on %v", vals[0])
	}
}

func TestParseBlockCorrupt(t *testing.T) {
	if _, err := parseBlock(0, []byte{1, 2}); err == nil {
		t.Error("short block accepted")
	}
	// Offset table claims more entries than fit.
	bad := make([]byte, 16)
	bad[len(bad)-1] = 200
	if _, err := parseBlock(0, bad); err == nil {
		t.Error("overrunning offset table accepted")
	}
}

func BenchmarkRunBuild100K(b *testing.B) {
	def := defI1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl, _ := NewBuilder(def, Meta{}, 0)
		for j := 0; j < 100_000; j++ {
			_ = bl.AddValues(
				[]keyenc.Value{keyenc.I64(int64(j % 1000))},
				[]keyenc.Value{keyenc.I64(int64(j / 1000))},
				[]keyenc.Value{keyenc.I64(int64(j))},
				types.TS(j+1), types.RID{Offset: uint32(j)},
			)
		}
		if _, _, err := bl.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSeek(b *testing.B) {
	data, h := buildRun(b, defI1(), 100_000, 1000, 0)
	r := NewReader(h, NewMemSource(data, h))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := MakeSearchKey(h.Def, []keyenc.Value{keyenc.I64(rng.Int63n(1000))}, []keyenc.Value{keyenc.I64(rng.Int63n(100))})
		if err != nil {
			b.Fatal(err)
		}
		it, err := r.SeekGE(k)
		if err != nil {
			b.Fatal(err)
		}
		if it.Valid() {
			if _, err := it.Entry(); err != nil {
				b.Fatal(err)
			}
		}
		it.Close()
	}
}

func TestMakeSearchKeyValidation(t *testing.T) {
	def := defI1()
	if _, err := MakeSearchKey(def, nil, nil); err == nil {
		t.Error("missing equality values accepted")
	}
	if _, err := MakeSearchKey(def, []keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1), keyenc.I64(2)}); err == nil {
		t.Error("too many sort bounds accepted")
	}
	// Prefix bound (no sort columns) is allowed.
	if _, err := MakeSearchKey(def, []keyenc.Value{keyenc.I64(1)}, nil); err != nil {
		t.Errorf("prefix search key rejected: %v", err)
	}
}

func TestHasPrefix(t *testing.T) {
	def := defI1()
	e, err := MakeEntry(def, []keyenc.Value{keyenc.I64(4)}, []keyenc.Value{keyenc.I64(9)}, []keyenc.Value{keyenc.I64(0)}, 1, types.RID{})
	if err != nil {
		t.Fatal(err)
	}
	group, err := MakeSearchKey(def, []keyenc.Value{keyenc.I64(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !HasPrefix(e, group) {
		t.Error("entry must match its equality-group prefix")
	}
	other, err := MakeSearchKey(def, []keyenc.Value{keyenc.I64(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if HasPrefix(e, other) {
		t.Error("entry must not match a different equality group")
	}
}

func fmtEntries(es []Entry) string {
	var b bytes.Buffer
	for _, e := range es {
		fmt.Fprintf(&b, "(%x,%x,%d) ", e.Hash, e.Key, e.BeginTS)
	}
	return b.String()
}

var _ = fmtEntries // kept for debugging failed ordering tests
