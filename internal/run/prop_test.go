package run

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// randDef builds a random index definition mixing column kinds.
func randDef(rng *rand.Rand) Def {
	kinds := []keyenc.Kind{keyenc.KindInt64, keyenc.KindUint64, keyenc.KindString, keyenc.KindFloat64}
	pick := func(n int) []keyenc.Kind {
		out := make([]keyenc.Kind, n)
		for i := range out {
			out[i] = kinds[rng.Intn(len(kinds))]
		}
		return out
	}
	d := Def{
		EqualityKinds: pick(1 + rng.Intn(2)),
		SortKinds:     pick(rng.Intn(2)),
		IncludedKinds: pick(rng.Intn(2)),
		HashBits:      uint8(4 + rng.Intn(6)),
	}
	return d
}

func randValue(rng *rand.Rand, k keyenc.Kind) keyenc.Value {
	switch k {
	case keyenc.KindInt64:
		return keyenc.I64(rng.Int63n(1000) - 500)
	case keyenc.KindUint64:
		return keyenc.U64(uint64(rng.Intn(1000)))
	case keyenc.KindFloat64:
		return keyenc.F64(float64(rng.Intn(100)) / 4)
	case keyenc.KindString:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte(rng.Intn(256)) // includes 0x00 to stress escaping
		}
		return keyenc.Str(string(b))
	case keyenc.KindBool:
		return keyenc.B(rng.Intn(2) == 1)
	default:
		panic("unexpected kind")
	}
}

func randValues(rng *rand.Rand, kinds []keyenc.Kind) []keyenc.Value {
	out := make([]keyenc.Value, len(kinds))
	for i, k := range kinds {
		out[i] = randValue(rng, k)
	}
	return out
}

// TestRandomRunsMatchNaive builds runs from random entries over random
// definitions (mixed column kinds, keys containing NUL bytes, duplicate
// keys with multiple versions, random block sizes) and checks three
// properties against a naive in-memory reference:
//
//  1. full iteration yields exactly the sorted entry sequence;
//  2. SeekGE lands where a linear scan says it should, for random probes;
//  3. the synopsis never prunes a run that contains a matching entry.
func TestRandomRunsMatchNaive(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		def := randDef(rng)
		blockSize := 128 + rng.Intn(2048)
		n := 1 + rng.Intn(400)

		b, err := NewBuilder(def, Meta{Zone: types.ZoneGroomed}, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		var ref []Entry
		for i := 0; i < n; i++ {
			eq := randValues(rng, def.EqualityKinds)
			sortv := randValues(rng, def.SortKinds)
			incl := randValues(rng, def.IncludedKinds)
			ts := types.TS(1 + rng.Intn(50)) // duplicates versions on purpose
			rid := types.RID{Zone: types.ZoneGroomed, Block: 1, Offset: uint32(i)}
			e, err := MakeEntry(def, eq, sortv, incl, ts, rid)
			if err != nil {
				t.Fatal(err)
			}
			b.Add(e)
			ref = append(ref, cloneEntryForTest(e))
		}
		data, h, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		sort.SliceStable(ref, func(i, j int) bool { return Compare(ref[i], ref[j]) < 0 })

		r := NewReader(h, NewMemSource(data, h))

		// Property 1: iteration order.
		i := 0
		for it := r.Begin(); it.Valid(); it.Next() {
			e, err := it.Entry()
			if err != nil {
				t.Fatal(err)
			}
			if Compare(e, ref[i]) != 0 || !bytes.Equal(e.Included, ref[i].Included) {
				t.Fatalf("trial %d: entry %d mismatch", trial, i)
			}
			i++
		}
		if i != n {
			t.Fatalf("trial %d: iterated %d of %d", trial, i, n)
		}

		// Property 2: random seeks.
		for probe := 0; probe < 30; probe++ {
			eq := randValues(rng, def.EqualityKinds)
			var sortBound []keyenc.Value
			if len(def.SortKinds) > 0 && rng.Intn(2) == 0 {
				sortBound = randValues(rng, def.SortKinds[:1])
			}
			k, err := MakeSearchKey(def, eq, sortBound)
			if err != nil {
				t.Fatal(err)
			}
			want := -1
			for j := range ref {
				if CompareToSearchKey(ref[j], k) >= 0 {
					want = j
					break
				}
			}
			it, err := r.SeekGE(k)
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				if it.Valid() {
					t.Fatalf("trial %d probe %d: seek found %d, scan found nothing", trial, probe, it.Ordinal())
				}
			} else if !it.Valid() || it.Ordinal() != uint64(want) {
				t.Fatalf("trial %d probe %d: seek ordinal %v, want %d", trial, probe, it.Ordinal(), want)
			}
			it.Close()
		}

		// Property 3: the synopsis admits every present key.
		for probe := 0; probe < 20; probe++ {
			e := ref[rng.Intn(len(ref))]
			var bounds []ColumnBound
			_ = columnSegments(e.Key, def.KeyKinds(), func(col int, seg []byte) {
				bounds = append(bounds, ColumnBound{Lo: seg, Hi: seg})
			})
			if !HeaderMayContain(h, bounds) {
				t.Fatalf("trial %d: synopsis rejected a present key", trial)
			}
		}
	}
}

func cloneEntryForTest(e Entry) Entry {
	out := e
	out.Key = append([]byte(nil), e.Key...)
	out.Included = append([]byte(nil), e.Included...)
	return out
}

// TestIterBlockCacheEviction forces the iterator's parsed-block cache to
// evict (long scans over many blocks) and checks nothing breaks.
func TestIterBlockCacheEviction(t *testing.T) {
	def := defI1()
	b, err := NewBuilder(def, Meta{}, 256) // tiny blocks: many of them
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := b.AddValues(
			[]keyenc.Value{keyenc.I64(int64(i % 5))},
			[]keyenc.Value{keyenc.I64(int64(i / 5))},
			[]keyenc.Value{keyenc.I64(int64(i))},
			types.TS(i+1), types.RID{Offset: uint32(i)},
		); err != nil {
			t.Fatal(err)
		}
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.BlockIndex) <= iterBlockCacheCap {
		t.Fatalf("test needs more than %d blocks, got %d", iterBlockCacheCap, len(h.BlockIndex))
	}
	r := NewReader(h, NewMemSource(data, h))
	count := 0
	it := r.Begin()
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if _, err := it.Entry(); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Fatalf("iterated %d of %d across cache evictions", count, n)
	}
}

// TestPinCountingAcrossEviction uses a pin-tracking source to prove the
// iterator releases exactly what it fetched, including evicted blocks.
func TestPinCountingAcrossEviction(t *testing.T) {
	def := defI1()
	b, _ := NewBuilder(def, Meta{}, 256)
	for i := 0; i < 4000; i++ {
		_ = b.AddValues(
			[]keyenc.Value{keyenc.I64(int64(i % 3))},
			[]keyenc.Value{keyenc.I64(int64(i / 3))},
			[]keyenc.Value{keyenc.I64(int64(i))},
			types.TS(i+1), types.RID{Offset: uint32(i)},
		)
	}
	data, h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	src := &pinTrackingSource{inner: NewMemSource(data, h), pins: map[uint32]int{}}
	r := NewReader(h, src)
	it := r.Begin()
	for ; it.Valid(); it.Next() {
		if _, err := it.Entry(); err != nil {
			t.Fatal(err)
		}
	}
	it.Close()
	for idx, pins := range src.pins {
		if pins != 0 {
			t.Errorf("block %d left with %d outstanding pins", idx, pins)
		}
	}
}

type pinTrackingSource struct {
	inner BlockSource
	pins  map[uint32]int
}

func (s *pinTrackingSource) FetchBlock(i uint32) ([]byte, error) {
	data, err := s.inner.FetchBlock(i)
	if err == nil {
		s.pins[i]++
	}
	return data, err
}

func (s *pinTrackingSource) Release(i uint32) { s.pins[i]-- }
