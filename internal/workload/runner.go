package workload

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"umzi"
)

// The runner: executes selected scenarios one at a time (scenarios own
// the whole process while they run — they measure latency percentiles
// and goroutine baselines, so sharing the machine would pollute both)
// and folds each scenario's state into a JSON-ready report.

// RunOptions configure one runner invocation.
type RunOptions struct {
	// Scale multiplies scenario load (row counts, writers, iterations);
	// values < 1 are treated as 1.
	Scale int
	// Seed is the base RNG seed scenarios derive from (reproducibility).
	Seed int64
	// Timeout overrides every scenario's own timeout when positive.
	Timeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// RemoteAddr is the umzi-server address remote scenarios run
	// against; empty disables them.
	RemoteAddr string
	// RemoteToken authenticates State.OpenClient connections.
	RemoteToken string
	// BlockCacheBytes, when positive, caps every scenario DB's
	// decoded-block cache at this byte budget (State.OpenDB applies it
	// unless the scenario sets its own). Small values force eviction
	// churn on the read path while the invariant checks run.
	BlockCacheBytes int64
}

// Result is one scenario's outcome in the report.
type Result struct {
	Name       string                     `json:"name"`
	Desc       string                     `json:"desc"`
	Attrs      []string                   `json:"attrs"`
	Status     string                     `json:"status"` // "pass" | "fail"
	Failures   []string                   `json:"failures,omitempty"`
	DurationMS float64                    `json:"duration_ms"`
	Latency    map[string]*LatencySummary `json:"latency_ms,omitempty"`
	Freshness  *LatencySummary            `json:"freshness_ms,omitempty"`
	Counters   map[string]int64           `json:"counters,omitempty"`
	// EngineMetrics are the engine-side metric snapshots of every DB the
	// scenario opened through State.OpenDB, captured just before each
	// Close — the engine's own account of the run, next to the
	// harness-side latencies above.
	EngineMetrics []*umzi.MetricsSnapshot `json:"engine_metrics,omitempty"`
}

// Report is the runner's JSON output.
type Report struct {
	Selection string   `json:"selection"`
	Scale     int      `json:"scale"`
	Seed      int64    `json:"seed"`
	Passed    bool     `json:"passed"`
	Results   []Result `json:"results"`
}

// hangGrace is how long past its deadline a scenario may take to honor
// context cancellation before the runner declares it hung and moves on.
const hangGrace = 30 * time.Second

// Run executes the scenarios in order and returns the combined report.
func Run(scenarios []*Scenario, opts RunOptions, selection string) *Report {
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	rep := &Report{Selection: selection, Scale: opts.Scale, Seed: opts.Seed, Passed: true}
	for _, scn := range scenarios {
		res := runOne(scn, opts)
		if res.Status != "pass" {
			rep.Passed = false
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// runOne executes a single scenario with its timeout, recovering both
// Fatalf aborts and unexpected panics into recorded failures.
func runOne(scn *Scenario, opts RunOptions) Result {
	state := newState(scn, opts)
	timeout := scn.Timeout
	if opts.Timeout > 0 {
		timeout = opts.Timeout
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	state.logf("=== RUN %s (timeout %v)", scn.name, timeout)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			switch r := recover(); r.(type) {
			case nil, abortScenario:
				// Normal return or Fatalf: the failure (if any) is recorded.
			default:
				state.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		scn.Func(ctx, state)
	}()

	hung := false
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline hit mid-scenario: the scenario should observe ctx and
		// return promptly; give it a grace window before declaring it hung.
		select {
		case <-done:
			state.Errorf("scenario exceeded its %v timeout", timeout)
		case <-time.After(hangGrace):
			hung = true
			state.Errorf("scenario hung: did not return within %v of its %v deadline", hangGrace, timeout)
		}
	}
	if !hung {
		state.runCleanups()
	}
	elapsed := time.Since(start)

	state.mu.Lock()
	defer state.mu.Unlock()
	res := Result{
		Name:       scn.name,
		Desc:       scn.Desc,
		Attrs:      scn.Attrs,
		Status:     "pass",
		Failures:   state.failures,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
	}
	if len(state.failures) > 0 {
		res.Status = "fail"
	}
	if len(state.counters) > 0 {
		res.Counters = make(map[string]int64, len(state.counters))
		for k, v := range state.counters {
			res.Counters[k] = v
		}
	}
	for op, r := range state.latencies {
		if sum := r.summary(); sum != nil {
			if res.Latency == nil {
				res.Latency = map[string]*LatencySummary{}
			}
			res.Latency[op] = sum
		}
	}
	res.Freshness = state.freshness.summary()
	res.EngineMetrics = state.engineMetrics
	state.logf("--- %s %s (%.0f ms)", statusWord(res.Status), scn.name, res.DurationMS)
	return res
}

func statusWord(status string) string {
	if status == "pass" {
		return "PASS"
	}
	return "FAIL"
}

// FormatSummary renders a one-line-per-scenario human summary (the JSON
// report is the machine surface; this goes to stderr).
func FormatSummary(rep *Report) string {
	out := ""
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-5s %-24s %8.0f ms", statusWord(r.Status), r.Name, r.DurationMS)
		if f := r.Freshness; f != nil {
			out += fmt.Sprintf("  freshness p50 %.1f ms", f.P50)
		}
		out += "\n"
		for _, msg := range r.Failures {
			out += "      " + msg + "\n"
		}
	}
	return out
}
