package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/storage"
)

// State is a scenario's connection to the harness: failure reporting
// (Errorf keeps going, Fatalf aborts), structured metrics (latency
// samples per operation class, snapshot-freshness samples, counters),
// scale/seed knobs, and managed resources (backing stores and DBs with
// LIFO cleanup, like testing.T). All methods are safe for concurrent
// use — scenarios are expected to fan out writers, analysts and probers.
type State struct {
	scn  *Scenario
	opts RunOptions
	logf func(format string, args ...any)

	mu            sync.Mutex
	failures      []string
	cleanups      []func()
	counters      map[string]int64
	latencies     map[string]*recorder
	freshness     recorder
	engineMetrics []*umzi.MetricsSnapshot
}

// abortScenario is the panic payload Fatalf unwinds with; the runner
// recovers it and treats it as a recorded failure, not a crash.
type abortScenario struct{}

func newState(scn *Scenario, opts RunOptions) *State {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &State{
		scn:       scn,
		opts:      opts,
		logf:      logf,
		counters:  map[string]int64{},
		latencies: map[string]*recorder{},
	}
}

// Scale returns the load multiplier (>= 1): scenarios size row counts,
// writer counts and iteration targets by it.
func (s *State) Scale() int { return s.opts.Scale }

// Seed returns the base RNG seed; scenarios derive per-goroutine
// sources from it so runs are reproducible.
func (s *State) Seed() int64 { return s.opts.Seed }

// Logf emits a progress line through the runner's logger (stderr under
// -v, discarded otherwise).
func (s *State) Logf(format string, args ...any) {
	s.logf("[%s] "+format, append([]any{s.scn.name}, args...)...)
}

// Errorf records a failure and lets the scenario continue.
func (s *State) Errorf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.failures = append(s.failures, msg)
	s.mu.Unlock()
	s.logf("[%s] FAIL: %s", s.scn.name, msg)
}

// Fatalf records a failure and aborts the scenario immediately. It must
// be called from the scenario goroutine only (it unwinds by panicking);
// helper goroutines should use Errorf and return.
func (s *State) Fatalf(format string, args ...any) {
	s.Errorf(format, args...)
	panic(abortScenario{})
}

// Failed reports whether any failure has been recorded.
func (s *State) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.failures) > 0
}

// Observe records one latency sample under an operation class.
func (s *State) Observe(op string, d time.Duration) {
	s.mu.Lock()
	r := s.latencies[op]
	if r == nil {
		r = &recorder{}
		s.latencies[op] = r
	}
	s.mu.Unlock()
	r.observe(d)
}

// Time starts a latency measurement; the returned func stops it and
// records the sample:
//
//	defer s.Time("analytics")()
func (s *State) Time(op string) func() {
	start := time.Now()
	return func() { s.Observe(op, time.Since(start)) }
}

// ObserveFreshness records one snapshot-freshness sample: the lag from
// a commit's acknowledgment to its visibility at the newest groomed
// snapshot (the CH-benCHmark-style freshness metric).
func (s *State) ObserveFreshness(d time.Duration) {
	s.freshness.observe(d)
}

// Add bumps a named counter (rows ingested, crashes survived, cursors
// closed early, ...) reported verbatim in the scenario's result.
func (s *State) Add(counter string, delta int64) {
	s.mu.Lock()
	s.counters[counter] += delta
	s.mu.Unlock()
}

// Cleanup registers a function run (LIFO) when the scenario finishes,
// pass or fail.
func (s *State) Cleanup(fn func()) {
	s.mu.Lock()
	s.cleanups = append(s.cleanups, fn)
	s.mu.Unlock()
}

// runCleanups runs the registered cleanups newest-first.
func (s *State) runCleanups() {
	s.mu.Lock()
	cleanups := s.cleanups
	s.cleanups = nil
	s.mu.Unlock()
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
}

// Backend returns a fresh durable backing store for a scenario: an
// in-memory store by default, or — when UMZI_FSYNC=1, the CI
// durability tier — a filesystem store with fsync before every object
// publish, rooted in a temp directory cleaned up with the scenario.
func (s *State) Backend(name string) umzi.ObjectStore {
	if os.Getenv("UMZI_FSYNC") == "" {
		return storage.NewMemStore(storage.LatencyModel{})
	}
	dir, err := os.MkdirTemp("", "umzi-workload-*")
	if err != nil {
		s.Fatalf("temp dir for fsync backend: %v", err)
	}
	s.Cleanup(func() { os.RemoveAll(dir) })
	fs, err := storage.NewFSStore(filepath.Join(dir, name), storage.LatencyModel{})
	if err != nil {
		s.Fatalf("fsync backend: %v", err)
	}
	fs.SetFsync(true)
	return fs
}

// OpenDB opens an in-process DB for the scenario and registers its
// Close as a cleanup. A nil cfg.Store gets a fresh Backend. Fatalf on
// failure. Crash scenarios that must drop a DB without Close open
// theirs with umzi.OpenDB directly instead.
//
// The cleanup snapshots the DB's engine metrics just before Close, so
// every scenario's JSON result carries the engine's own view of the run
// (WAL batches, groom freshness, synopsis skips, ...) next to the
// harness-side measurements.
func (s *State) OpenDB(cfg umzi.DBConfig) *umzi.DB {
	if cfg.Store == nil {
		cfg.Store = s.Backend("db")
	}
	if cfg.BlockCacheBytes == 0 && s.opts.BlockCacheBytes > 0 {
		// Harness-wide block-cache budget (-block-cache-bytes): starve
		// the decoded-block cache so scenarios exercise eviction churn.
		cfg.BlockCacheBytes = s.opts.BlockCacheBytes
	}
	db, err := umzi.OpenDB(cfg)
	if err != nil {
		s.Fatalf("OpenDB: %v", err)
	}
	s.Cleanup(func() {
		snap := db.Metrics()
		s.mu.Lock()
		s.engineMetrics = append(s.engineMetrics, snap)
		s.mu.Unlock()
		db.Close()
	})
	return db
}

// RemoteAddr returns the umzi-server address configured with -remote
// ("" when this run has no server to talk to).
func (s *State) RemoteAddr() string { return s.opts.RemoteAddr }

// OpenClient connects to the -remote umzi-server and registers the
// client's Close as a cleanup. Fatalf when no remote address is
// configured — remote scenarios declare AttrRemote, so attribute
// selection keeps them out of serverless runs; reaching this without an
// address means someone forced one with -run.
func (s *State) OpenClient() *client.DB {
	if s.opts.RemoteAddr == "" {
		s.Fatalf("scenario needs a server: rerun with -remote addr:port")
	}
	cdb, err := client.Open(client.Config{Addr: s.opts.RemoteAddr, Token: s.opts.RemoteToken})
	if err != nil {
		s.Fatalf("OpenClient(%s): %v", s.opts.RemoteAddr, err)
	}
	s.Cleanup(func() { cdb.Close() })
	return cdb
}

// uniqueSeq distinguishes names minted by UniqueName within a process.
var uniqueSeq atomic.Int64

// UniqueName mints a table name unique across scenarios and processes
// sharing one long-lived server, so remote scenarios can re-run without
// colliding with their previous tables.
func (s *State) UniqueName(prefix string) string {
	return fmt.Sprintf("%s_%d_%d_%d", prefix, os.Getpid(), time.Now().UnixNano()%1e9, uniqueSeq.Add(1))
}
