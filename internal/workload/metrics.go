package workload

import (
	"sort"
	"sync"
	"time"
)

// Latency recording. Scenarios observe raw samples per operation class
// ("ingest", "analytics", "scan", ...); the runner summarizes them into
// percentiles for the JSON report. Samples are milliseconds as float64
// — human-scale units for a human-read report.

// maxSamples caps one recorder's memory; past it, new samples still
// update the count and max but no longer shift the percentiles. The cap
// is far above anything the shipped scenarios produce.
const maxSamples = 1 << 20

// LatencySummary is the JSON shape of one operation class's latency
// distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// recorder accumulates latency samples; safe for concurrent use.
type recorder struct {
	mu      sync.Mutex
	samples []float64 // ms
	count   int
	sum     float64
	max     float64
}

func (r *recorder) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.count++
	r.sum += ms
	if ms > r.max {
		r.max = ms
	}
	if len(r.samples) < maxSamples {
		r.samples = append(r.samples, ms)
	}
	r.mu.Unlock()
}

// summary folds the samples into percentiles (nearest-rank); nil when
// nothing was observed.
func (r *recorder) summary() *LatencySummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return nil
	}
	sorted := append([]float64(nil), r.samples...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return &LatencySummary{
		Count: r.count,
		Mean:  r.sum / float64(r.count),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   r.max,
	}
}
