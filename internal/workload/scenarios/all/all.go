// Package all links the complete scenario library into a binary: blank
// import it to trigger every scenario package's registration init.
// cmd/umzi-workload imports it; a test that wants the full library in
// its registry can too.
package all

import (
	_ "umzi/internal/workload/scenarios/crash"
	_ "umzi/internal/workload/scenarios/htap"
	_ "umzi/internal/workload/scenarios/iot"
	_ "umzi/internal/workload/scenarios/server"
	_ "umzi/internal/workload/scenarios/stream"
)
