// Package server holds scenarios that drive a running umzi-server over
// the wire protocol (umzi-workload -remote addr:port). They are the
// integration tier for the serving layer: streaming backpressure
// against stalled consumers, cancellation reclaiming server-side
// workers, and mixed HTAP traffic through the client pool.
package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: SlowConsumer,
		Desc: "stall a client mid-stream: bounded buffers must hold, the server must keep serving others, and cancel must reclaim the stream",
		Attrs: []string{
			workload.AttrReadHeavy,
			workload.AttrRemote,
		},
		Timeout: 2 * time.Minute,
	})
}

// SlowConsumer streams a result an order of magnitude bigger than the
// path's buffers (client bufio + TCP windows + server batch buffer) and
// then stops reading. The contract under test: the server dispatcher
// blocks on the TCP write, the engine's shard workers block on their
// bounded streams — a stalled peer pins O(buffers) rows, not the result
// set — and the rest of the server keeps answering other connections.
// Cancelling the stalled stream (Rows.Close sends a Cancel frame) must
// reclaim the server-side cursor and leave the connection reusable.
func SlowConsumer(ctx context.Context, s *workload.State) {
	cdb := s.OpenClient()

	// Wide rows so the stream's byte volume, not its row count, is the
	// lever: ~1 KiB per row, rows*KiB per full result.
	const payloadBytes = 1024
	rows := 4096 * s.Scale()
	pad := strings.Repeat("x", payloadBytes)

	name := s.UniqueName("slow")
	tbl, err := cdb.CreateTable(ctx, umzi.TableDef{
		Name: name,
		Columns: []umzi.TableColumn{
			{Name: "k", Kind: umzi.KindInt64},
			{Name: "pad", Kind: umzi.KindString},
		},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, client.TableOptions{Shards: 4})
	if err != nil {
		s.Fatalf("create table: %v", err)
	}

	for lo := 0; lo < rows; lo += 256 {
		n := min(256, rows-lo)
		batch := make([]umzi.Row, n)
		for i := range batch {
			batch[i] = umzi.Row{umzi.I64(int64(lo + i)), umzi.Str(pad)}
		}
		if err := tbl.Upsert(ctx, batch...); err != nil {
			s.Fatalf("seed: %v", err)
		}
		s.Add("rows_ingested", int64(n))
	}

	// A second client connection probes liveness while the first stalls.
	prober := s.OpenClient()

	const storms = 3
	for storm := 0; storm < storms; storm++ {
		stream, err := tbl.Query().IncludeLive().Run(ctx)
		if err != nil {
			s.Fatalf("storm %d: open stream: %v", storm, err)
		}
		// Pull a token few rows, then stall with the stream open.
		for i := 0; i < 8 && stream.Next(); i++ {
			s.Add("rows_streamed", 1)
		}
		if err := stream.Err(); err != nil {
			s.Fatalf("storm %d: early rows: %v", storm, err)
		}
		s.Add("streams_stalled", 1)

		// While stalled, the server must still answer on other
		// connections — bounded buffers mean one wedged stream cannot
		// wedge the process.
		stallUntil := time.Now().Add(2 * time.Second)
		for time.Now().Before(stallUntil) {
			done := s.Time("probe_during_stall")
			if err := prober.Ping(ctx); err != nil {
				s.Errorf("storm %d: ping during stall: %v", storm, err)
				break
			}
			done()
			if err := tbl2Probe(ctx, prober, name); err != nil {
				s.Errorf("storm %d: query during stall: %v", storm, err)
				break
			}
			time.Sleep(100 * time.Millisecond)
		}

		// Cancel the stalled stream; Close must return clean and the
		// connection must come back reusable.
		done := s.Time("cancel_stalled_stream")
		if err := stream.Close(); err != nil {
			s.Errorf("storm %d: close stalled stream: %v", storm, err)
		}
		done()
		s.Add("streams_canceled", 1)
		if err := cdb.Ping(ctx); err != nil {
			s.Errorf("storm %d: ping after cancel: %v", storm, err)
		}
	}

	// Full drain: after every storm the complete result must still
	// arrive intact — nothing was lost to the cancels.
	drained := 0
	stream, err := tbl.Query().IncludeLive().Run(ctx)
	if err != nil {
		s.Fatalf("final drain: %v", err)
	}
	for stream.Next() {
		drained++
	}
	if err := stream.Close(); err != nil {
		s.Errorf("final drain close: %v", err)
	}
	if drained != rows {
		s.Errorf("final drain saw %d rows, want %d", drained, rows)
	}
	s.Add("rows_streamed", int64(drained))

	// Parallel stalls: every pooled connection stalled at once, then all
	// canceled — the pool and the server both recover.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := tbl.Query().IncludeLive().Run(ctx)
			if err != nil {
				s.Errorf("parallel stall: open: %v", err)
				return
			}
			st.Next()
			time.Sleep(500 * time.Millisecond)
			if err := st.Close(); err != nil {
				s.Errorf("parallel stall: close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := cdb.Ping(ctx); err != nil {
		s.Errorf("ping after parallel stalls: %v", err)
	}
}

// tbl2Probe runs one tiny point query on the prober connection.
func tbl2Probe(ctx context.Context, cdb *client.DB, table string) error {
	row, found, err := cdb.Table(table).Query().
		Where(umzi.Eq("k", umzi.I64(1))).IncludeLive().One(ctx)
	if err != nil {
		return err
	}
	if !found || len(row) == 0 {
		return fmt.Errorf("probe row missing")
	}
	return nil
}
