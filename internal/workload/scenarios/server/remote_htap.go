package server

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: RemoteHTAP,
		Desc: "mixed HTAP through the wire protocol: concurrent writers commit while analysts stream aggregates; totals must reconcile",
		Attrs: []string{
			workload.AttrReadHeavy,
			workload.AttrWriteHeavy,
			workload.AttrRemote,
		},
		Timeout: 2 * time.Minute,
	})
}

// RemoteHTAP is the network analogue of htap.OrderAnalytics: writers
// push transactional ingest through the client pool while analysts run
// streaming scans concurrently, all over one server. At the end the
// row count observed through the wire must equal the rows acknowledged
// committed — the wire protocol loses nothing under concurrency.
func RemoteHTAP(ctx context.Context, s *workload.State) {
	cdb := s.OpenClient()
	name := s.UniqueName("htap")
	tbl, err := cdb.CreateTable(ctx, umzi.TableDef{
		Name: name,
		Columns: []umzi.TableColumn{
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "order", Kind: umzi.KindInt64},
			{Name: "total", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"customer", "order"},
		ShardKey:   []string{"customer"},
	}, client.TableOptions{
		Shards: 4,
		Index: umzi.IndexSpec{
			Equality: []string{"customer"},
			Sort:     []string{"order"},
			Included: []string{"total"},
		},
	})
	if err != nil {
		s.Fatalf("create table: %v", err)
	}

	const writers = 4
	perWriter := 600 * s.Scale()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.Seed() + int64(w)))
			for i := 0; i < perWriter; i += 20 {
				batch := make([]umzi.Row, 20)
				for j := range batch {
					order := int64(w*perWriter + i + j)
					batch[j] = umzi.Row{
						umzi.I64(int64(rng.Intn(16))*1000 + order%1000), // customer
						umzi.I64(order),
						umzi.F64(float64(rng.Intn(10000)) / 100),
					}
				}
				done := s.Time("remote_commit")
				if err := tbl.Upsert(ctx, batch...); err != nil {
					s.Errorf("writer %d: %v", w, err)
					return
				}
				done()
				s.Add("rows_committed", 20)
			}
		}(w)
	}

	// Analysts: streaming scans racing the ingest. Row counts only grow.
	actx, acancel := context.WithCancel(ctx)
	var awg sync.WaitGroup
	for a := 0; a < 2; a++ {
		awg.Add(1)
		go func() {
			defer awg.Done()
			last := 0
			for actx.Err() == nil {
				done := s.Time("remote_scan")
				rows, err := tbl.Query().IncludeLive().Run(actx)
				if err != nil {
					if actx.Err() == nil {
						s.Errorf("analyst open: %v", err)
					}
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				err = rows.Close()
				if actx.Err() != nil {
					return
				}
				if err != nil {
					s.Errorf("analyst close: %v", err)
					return
				}
				done()
				if n < last {
					s.Errorf("analyst saw row count shrink: %d after %d", n, last)
					return
				}
				last = n
				s.Add("scans_completed", 1)
			}
		}()
	}

	wg.Wait()
	acancel()
	awg.Wait()
	if s.Failed() {
		return
	}

	// Reconcile: distinct (customer, order) keys written == rows read.
	// Writers may collide on a key (same customer bucket + order), so
	// count distinct keys server-side through the primary index.
	rows, err := tbl.Query().IncludeLive().Run(ctx)
	if err != nil {
		s.Fatalf("reconcile: %v", err)
	}
	seen := 0
	for rows.Next() {
		seen++
	}
	if err := rows.Close(); err != nil {
		s.Errorf("reconcile close: %v", err)
	}
	want := writers * perWriter
	if seen != want {
		s.Errorf("reconcile: %d rows over the wire, want %d", seen, want)
	}
}
