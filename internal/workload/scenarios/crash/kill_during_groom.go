// Package crash holds fault-injection scenarios: storage writes start
// failing at an arbitrary point — most often mid-groom, since grooming
// is where write bursts happen — the process state is dropped without
// Close, and recovery from shared storage must preserve every
// acknowledged transaction ("the log is the database").
package crash

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"umzi"
	"umzi/internal/storage"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: KillDuringGroom,
		Desc: "repeated injected write-fault crashes across ingest and groom; every reopen must recover all acked rows and surface nothing unacked",
		Attrs: []string{
			workload.AttrCrashInjecting,
			workload.AttrWriteHeavy,
		},
		Timeout: 3 * time.Minute,
	})
}

// minCrashes is the floor of injected-failure iterations one run must
// survive (scaled up by -scale).
const minCrashes = 20

// KillDuringGroom loops: revive the store with a small randomized write
// budget, ingest batches and groom until the budget runs out and a
// write fails, then "kill" the process — drop the DB without Close —
// and reopen against the same store. Because batches are frequent and
// cheap (one log append) while grooms are write bursts, the budget cut
// usually lands inside a groom, the hardest point to recover from: run
// files half-written, the watermark not yet advanced.
//
// An oracle tracks every key by fate: acked (Upsert returned nil — the
// commit log accepted it) and attempted (Upsert was called; the rows
// may or may not have reached the log). After every reopen, a full scan
// at MaxTS+IncludeLive must contain every acked key and nothing outside
// the attempted set, with no duplicates.
func KillDuringGroom(ctx context.Context, s *workload.State) {
	base := s.Backend("crash")
	fault := storage.NewFaultStore(base, 0)
	rng := rand.New(rand.NewSource(s.Seed() + 17))

	acked := map[int64]bool{}
	attempted := map[int64]bool{}
	var nextSeq int64

	def := umzi.TableDef{
		Name: "events",
		Columns: []umzi.TableColumn{
			{Name: "account", Kind: umzi.KindInt64},
			{Name: "seq", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"account", "seq"},
		ShardKey:   []string{"account"},
	}

	// reopen recovers a DB from the shared store with faults disabled
	// (recovery itself is not under test here) and verifies the oracle.
	reopen := func(create bool) (*umzi.DB, *umzi.Table) {
		fault.Revive(1 << 40)
		db, err := umzi.OpenDB(umzi.DBConfig{Store: fault})
		if err != nil {
			s.Fatalf("reopen: %v", err)
		}
		var tbl *umzi.Table
		if create {
			tbl, err = db.CreateTable(def, umzi.TableOptions{
				Shards:     4,
				Durability: umzi.DurabilityOptions{SyncPolicy: umzi.SyncPerCommit},
			})
		} else {
			tbl, err = db.Table("events")
		}
		if err != nil {
			s.Fatalf("reopen table: %v", err)
		}
		verify(ctx, s, tbl, acked, attempted)
		return db, tbl
	}

	db, tbl := reopen(true)
	crashes := 0
	target := minCrashes * s.Scale()
	for crashes < target && ctx.Err() == nil {
		// Arm the fault: the next 20..300 storage writes succeed, then
		// everything fails until the post-crash Revive.
		fault.Revive(int64(20 + rng.Intn(280)))

		var crashErr error
		for batch := 0; crashErr == nil && ctx.Err() == nil; batch++ {
			if batch > 100_000 {
				s.Fatalf("fault budget never exhausted after %d batches", batch)
			}
			account := int64(rng.Intn(64))
			n := 1 + rng.Intn(4)
			rows := make([]umzi.Row, n)
			for i := range rows {
				rows[i] = umzi.Row{
					umzi.I64(account),
					umzi.I64(nextSeq),
					umzi.F64(rng.Float64()),
				}
				attempted[account<<32|nextSeq] = true
				nextSeq++
			}
			stop := s.Time("ingest")
			err := tbl.Upsert(ctx, rows...)
			stop()
			if err == nil {
				for _, r := range rows {
					acked[r[0].Int()<<32|r[1].Int()] = true
				}
			} else {
				crashErr = err
			}
			if crashErr == nil && batch%5 == 4 {
				if err := tbl.Groom(); err != nil {
					crashErr = err
				}
			}
		}
		if ctx.Err() != nil {
			break
		}
		if !errors.Is(crashErr, storage.ErrInjectedFault) {
			s.Errorf("crash %d: failure is not the injected fault: %v", crashes, crashErr)
		}

		// Kill: drop the handles without Close (reopen overwrites them).
		// The live zone, half-done groom output and unflushed state all
		// vanish; only the store (log included) survives the reopen.
		crashes++
		s.Add("crashes", 1)
		db, tbl = reopen(false)
	}

	s.Add("rows-acked", int64(len(acked)))
	s.Add("rows-attempted", int64(len(attempted)))
	if ctx.Err() != nil && crashes < target {
		s.Errorf("timed out after %d/%d crash iterations", crashes, target)
		return
	}

	// Final pass: groom everything with faults off, verify again (the
	// recovered tail must survive grooming too), and close cleanly.
	if err := tbl.Groom(); err != nil {
		s.Fatalf("final groom: %v", err)
	}
	verify(ctx, s, tbl, acked, attempted)
	if err := db.Close(); err != nil {
		s.Errorf("final close: %v", err)
	}
	s.Logf("done: %d crashes survived, %d acked rows intact", crashes, len(acked))
}

// verify scans the whole table at MaxTS+IncludeLive and checks it is
// exactly consistent with the oracle: every acked key present, no key
// outside the attempted set, no duplicates.
func verify(ctx context.Context, s *workload.State, tbl *umzi.Table, acked, attempted map[int64]bool) {
	rows, err := tbl.Query().Select("account", "seq").At(umzi.MaxTS).IncludeLive().All(ctx)
	if err != nil {
		s.Fatalf("verify scan: %v", err)
	}
	got := make(map[int64]bool, len(rows))
	for _, r := range rows {
		key := r[0].Int()<<32 | r[1].Int()
		if got[key] {
			s.Errorf("verify: key account=%d seq=%d surfaced twice", r[0].Int(), r[1].Int())
		}
		got[key] = true
		if !attempted[key] {
			s.Errorf("verify: key account=%d seq=%d surfaced but was never written", r[0].Int(), r[1].Int())
		}
	}
	lost := 0
	for key := range acked {
		if !got[key] {
			lost++
			if lost <= 5 {
				s.Errorf("verify: ACKED ROW LOST: account=%d seq=%d", key>>32, key&0xffffffff)
			}
		}
	}
	if lost > 5 {
		s.Errorf("verify: ... and %d more acked rows lost", lost-5)
	}
}
