// Package htap holds mixed transactional/analytical scenarios: the
// CH-benCHmark shape — analytical queries racing transactional ingest
// on the same table — with snapshot-consistency assertions on every
// analytical read.
package htap

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: OrderAnalytics,
		Desc: "GROUP-BY aggregates race transactional upserts; every analytical read must be internally consistent at its snapshot timestamp",
		Attrs: []string{
			workload.AttrReadHeavy,
			workload.AttrWriteHeavy,
		},
		Timeout: 3 * time.Minute,
	})
}

// batchRows is the number of order rows each transaction inserts for
// one (customer, batch) pair — the atomic unit every analytical read
// must see wholly or not at all.
const batchRows = 4

// probeCustomer is the shard-key value reserved for freshness markers.
const probeCustomer = 1 << 20

// OrderAnalytics drives writers committing fixed-size order batches
// (all rows of a batch share one customer, hence one shard, hence one
// transaction commit) while analysts run GROUP-BY aggregates at pinned
// snapshot timestamps. Invariants checked on every analytical read:
//
//   - batch atomicity: COUNT per (customer, batch) group is exactly
//     batchRows — a partial batch means a snapshot cut a transaction
//     in half (the version-visibility bug class MV-PBT warns about);
//   - cross-query consistency: SUM of the group counts equals COUNT(*)
//     run separately at the same timestamp;
//   - repeatable read: re-running the COUNT(*) at the same timestamp
//     while grooming advances returns the same answer.
//
// A prober samples snapshot freshness: the lag from a commit's ack to
// its visibility at the newest groomed snapshot.
func OrderAnalytics(ctx context.Context, s *workload.State) {
	db := s.OpenDB(umzi.DBConfig{
		Store:          umzi.NewMemStore(umzi.LatencyModel{}),
		GroomEvery:     15 * time.Millisecond,
		PostGroomEvery: 150 * time.Millisecond,
	})
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "order", Kind: umzi.KindInt64},
			{Name: "batch", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"customer", "order"},
		ShardKey:   []string{"customer"},
	}, umzi.TableOptions{Shards: 4})
	if err != nil {
		s.Fatalf("create table: %v", err)
	}

	const writers, analysts = 2, 2
	batchesPerWriter := 120 * s.Scale()
	var batches, probeRows, analyticalReads atomic.Int64
	var probesSeen, probeLagNS atomic.Int64
	var writersDone atomic.Bool
	var wwg, rwg sync.WaitGroup

	// Writers: one batch of batchRows rows per transaction, all for one
	// customer so the commit is atomic on its shard. Customers and
	// order numbers are disjoint across writers, so the primary keys of
	// distinct batches never collide and row counts add up exactly.
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(s.Seed() + int64(w)))
			for b := 0; b < batchesPerWriter && ctx.Err() == nil; b++ {
				customer := int64(w*64 + rng.Intn(16))
				batch := int64(w*batchesPerWriter + b)
				rows := make([]umzi.Row, batchRows)
				for i := range rows {
					rows[i] = umzi.Row{
						umzi.I64(customer),
						umzi.I64(batch*batchRows + int64(i)),
						umzi.I64(batch),
						umzi.F64(rng.Float64() * 100),
					}
				}
				stop := s.Time("ingest")
				err := tbl.Upsert(ctx, rows...)
				stop()
				if err != nil {
					if ctx.Err() == nil {
						s.Errorf("writer %d: upsert batch %d: %v", w, batch, err)
					}
					return
				}
				batches.Add(1)
				// Pace the stream so the run spans many groom cycles and
				// the analysts race a moving snapshot, not a finished table.
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Analysts: every read pins the newest groomed snapshot and checks
	// the three invariants at that one timestamp.
	for a := 0; a < analysts; a++ {
		rwg.Add(1)
		go func(a int) {
			defer rwg.Done()
			for ctx.Err() == nil && !writersDone.Load() {
				ts := tbl.SnapshotTS()
				stop := s.Time("analytics")
				groups, err := tbl.Query().
					Where(umzi.Lt("customer", umzi.I64(probeCustomer))).
					GroupBy("customer", "batch").
					Aggs(umzi.Agg{Func: umzi.AggCount}).
					At(ts).
					All(ctx)
				stop()
				if err != nil {
					if ctx.Err() == nil {
						s.Errorf("analyst %d: group-by at ts %d: %v", a, ts, err)
					}
					return
				}
				var groupTotal int64
				for _, g := range groups {
					n := g[2].Int()
					groupTotal += n
					if n != batchRows {
						s.Errorf("analyst %d: snapshot %d sees partial batch customer=%d batch=%d: %d of %d rows",
							a, ts, g[0].Int(), g[1].Int(), n, batchRows)
					}
				}
				total, err := countOrdersAt(ctx, tbl, ts)
				if err != nil {
					if ctx.Err() == nil {
						s.Errorf("analyst %d: count at ts %d: %v", a, ts, err)
					}
					return
				}
				if total != groupTotal {
					s.Errorf("analyst %d: snapshot %d internally inconsistent: COUNT(*)=%d but group counts sum to %d",
						a, ts, total, groupTotal)
				}
				if again, err := countOrdersAt(ctx, tbl, ts); err == nil && again != total {
					s.Errorf("analyst %d: snapshot %d not repeatable: COUNT(*) %d then %d", a, ts, total, again)
				}
				analyticalReads.Add(1)
			}
		}(a)
	}

	// Freshness prober: commit a marker row, then poll the newest
	// groomed snapshot (no IncludeLive) until it surfaces.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for k := int64(0); ctx.Err() == nil && !writersDone.Load(); k++ {
			probe := umzi.Row{umzi.I64(probeCustomer), umzi.I64(k), umzi.I64(-1), umzi.F64(0)}
			if err := tbl.Upsert(ctx, probe); err != nil {
				return
			}
			probeRows.Add(1)
			acked := time.Now()
			for ctx.Err() == nil {
				_, found, err := tbl.Query().
					Where(umzi.And(
						umzi.Eq("customer", umzi.I64(probeCustomer)),
						umzi.Eq("order", umzi.I64(k)))).
					One(ctx)
				if err != nil {
					return
				}
				if found {
					lag := time.Since(acked)
					s.ObserveFreshness(lag)
					probesSeen.Add(1)
					probeLagNS.Add(int64(lag))
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	wwg.Wait()
	writersDone.Store(true)
	rwg.Wait()
	s.Add("batches-committed", batches.Load())
	s.Add("rows-committed", batches.Load()*batchRows)
	s.Add("analytical-reads", analyticalReads.Load())
	s.Add("freshness-probes", probeRows.Load())
	if ctx.Err() != nil {
		s.Errorf("timed out before final verification (%d/%d batches committed)", batches.Load(), int64(writers*batchesPerWriter))
		return
	}

	// Final ground truth at a quiesced snapshot: every committed row —
	// writer batches and freshness markers — is visible, exactly once.
	if err := tbl.Groom(); err != nil {
		s.Fatalf("final groom: %v", err)
	}
	total, err := countAllAt(ctx, tbl, tbl.SnapshotTS())
	if err != nil {
		s.Fatalf("final count: %v", err)
	}
	want := batches.Load()*batchRows + probeRows.Load()
	if total != want {
		s.Errorf("final snapshot count %d != %d committed rows", total, want)
	}

	// Cross-check the engine's own freshness histogram against the
	// harness prober. The groomer records one commit-ack→groomed-
	// visibility sample per row, so after the final groom the histogram
	// must hold exactly one sample per committed row; and since both
	// sides measure the same lag (the prober just adds polling overhead),
	// their means must agree in magnitude.
	snap := db.Metrics()
	var engineSamples, engineSumNS int64
	for _, m := range snap.Metrics {
		if m.Name == "groom_freshness_ns" && m.Hist != nil {
			engineSamples += m.Hist.Count
			engineSumNS += m.Hist.Sum
		}
	}
	if engineSamples != want {
		s.Errorf("engine groom_freshness_ns holds %d samples; %d rows were committed and groomed", engineSamples, want)
	}
	if seen := probesSeen.Load(); seen > 0 && engineSamples > 0 {
		engineMean := time.Duration(engineSumNS / engineSamples)
		harnessMean := time.Duration(probeLagNS.Load() / seen)
		s.Add("freshness-engine-mean-us", int64(engineMean/time.Microsecond))
		s.Add("freshness-harness-mean-us", int64(harnessMean/time.Microsecond))
		const slack = 50 * time.Millisecond
		if engineMean > 4*harnessMean+slack || harnessMean > 4*engineMean+slack {
			s.Errorf("freshness disagreement: engine mean %v vs harness prober mean %v", engineMean, harnessMean)
		}
	}
	s.Logf("done: %d batches, %d analytical reads", batches.Load(), analyticalReads.Load())
}

// countOrdersAt runs COUNT(*) over the order rows (excluding freshness
// markers) at one pinned snapshot timestamp.
func countOrdersAt(ctx context.Context, tbl *umzi.Table, ts umzi.TS) (int64, error) {
	return countWhereAt(ctx, tbl, umzi.Lt("customer", umzi.I64(probeCustomer)), ts)
}

// countAllAt runs COUNT(*) over the whole table at a pinned timestamp.
func countAllAt(ctx context.Context, tbl *umzi.Table, ts umzi.TS) (int64, error) {
	return countWhereAt(ctx, tbl, nil, ts)
}

func countWhereAt(ctx context.Context, tbl *umzi.Table, filter umzi.Expr, ts umzi.TS) (int64, error) {
	q := tbl.Query()
	if filter != nil {
		q = q.Where(filter)
	}
	rows, err := q.Aggs(umzi.Agg{Func: umzi.AggCount}).At(ts).All(ctx)
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("COUNT(*) returned %d rows", len(rows))
	}
	return rows[0][0].Int(), nil
}
