// Package iot holds ingest-shaped scenarios: the telemetry pattern the
// Wildfire paper targets — relentless appends per device with analytics
// trailing closely behind — sustained across enough groom and
// post-groom cycles that rows are read from every zone of the index.
package iot

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: RollingIngest,
		Desc: "sustained per-device appends across groom cycles; windowed scans must see every acked row exactly once, ordered scans a contiguous prefix",
		Attrs: []string{
			workload.AttrWriteHeavy,
			workload.AttrLongRunning,
		},
		Timeout: 3 * time.Minute,
	})
}

const (
	devices   = 6
	appendLen = 8  // rows per append transaction
	windowLen = 64 // trailing-window size for exact scans
)

// RollingIngest feeds per-device telemetry (one feeder per device,
// strictly increasing sequence numbers, appendLen rows per commit)
// while scanners chase the streams. Groom and post-groom periods are
// short so a run crosses many cycles and reads hit live, groomed and
// post-groomed zones. Two read checks run continuously:
//
//   - exact window: reading [hw-windowLen, hw) at MaxTS+IncludeLive,
//     where hw is the device's acked high-water mark captured before
//     the scan, must return exactly the acked sequence numbers — a
//     missing row is a lost write, a duplicate is a version leak
//     between zones;
//   - ordered prefix: an OrderBy(seq) scan at a groomed snapshot must
//     come back sorted and contiguous from 0 — per-device commits are
//     ordered, so a snapshot cut can only expose a prefix.
func RollingIngest(ctx context.Context, s *workload.State) {
	db := s.OpenDB(umzi.DBConfig{
		Store:          umzi.NewMemStore(umzi.LatencyModel{}),
		GroomEvery:     10 * time.Millisecond,
		PostGroomEvery: 80 * time.Millisecond,
	})
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "readings",
		Columns: []umzi.TableColumn{
			{Name: "device", Kind: umzi.KindInt64},
			{Name: "seq", Kind: umzi.KindInt64},
			{Name: "value", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"device", "seq"},
		ShardKey:   []string{"device"},
	}, umzi.TableOptions{Shards: 4})
	if err != nil {
		s.Fatalf("create table: %v", err)
	}

	rowsPerDevice := appendLen * 50 * s.Scale()
	var hw [devices]atomic.Int64 // acked rows per device
	var feedersDone atomic.Bool
	var fwg, swg sync.WaitGroup

	for d := 0; d < devices; d++ {
		fwg.Add(1)
		go func(d int) {
			defer fwg.Done()
			for seq := 0; seq < rowsPerDevice && ctx.Err() == nil; seq += appendLen {
				rows := make([]umzi.Row, appendLen)
				for i := range rows {
					rows[i] = umzi.Row{
						umzi.I64(int64(d)),
						umzi.I64(int64(seq + i)),
						umzi.F64(float64(seq+i) * 0.5),
					}
				}
				stop := s.Time("append")
				err := tbl.Upsert(ctx, rows...)
				stop()
				if err != nil {
					if ctx.Err() == nil {
						s.Errorf("device %d: append at seq %d: %v", d, seq, err)
					}
					return
				}
				hw[d].Store(int64(seq + appendLen))
				// Pace the feed so the stream spans many groom cycles and
				// scanners race live, groomed and post-groomed zones.
				time.Sleep(2 * time.Millisecond)
			}
		}(d)
	}

	var windowScans, orderedScans atomic.Int64

	// Exact-window scanners: every acked row in the trailing window is
	// visible at MaxTS+IncludeLive, exactly once.
	for w := 0; w < 2; w++ {
		swg.Add(1)
		go func(w int) {
			defer swg.Done()
			for d := w; ctx.Err() == nil && !feedersDone.Load(); d = (d + 1) % devices {
				mark := hw[d].Load()
				if mark == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				lo := mark - windowLen
				if lo < 0 {
					lo = 0
				}
				stop := s.Time("window-scan")
				rows, err := tbl.Query().
					Where(umzi.And(
						umzi.Eq("device", umzi.I64(int64(d))),
						umzi.Ge("seq", umzi.I64(lo)),
						umzi.Lt("seq", umzi.I64(mark)))).
					Select("seq").
					At(umzi.MaxTS).
					IncludeLive().
					All(ctx)
				stop()
				if err != nil {
					if ctx.Err() == nil {
						s.Errorf("window scan device %d [%d,%d): %v", d, lo, mark, err)
					}
					return
				}
				seen := make(map[int64]bool, len(rows))
				for _, r := range rows {
					seq := r[0].Int()
					if seen[seq] {
						s.Errorf("window scan device %d: seq %d returned twice", d, seq)
					}
					seen[seq] = true
				}
				for seq := lo; seq < mark; seq++ {
					if !seen[seq] {
						s.Errorf("window scan device %d [%d,%d): acked seq %d missing", d, lo, mark, seq)
						break
					}
				}
				if int64(len(rows)) != mark-lo {
					s.Errorf("window scan device %d [%d,%d): %d rows, want %d", d, lo, mark, len(rows), mark-lo)
				}
				windowScans.Add(1)
			}
		}(w)
	}

	// Ordered-prefix scanner: an OrderBy scan at a groomed snapshot is
	// sorted and contiguous from 0, and never ahead of the ack mark.
	swg.Add(1)
	go func() {
		defer swg.Done()
		for d := 0; ctx.Err() == nil && !feedersDone.Load(); d = (d + 1) % devices {
			mark := hw[d].Load()
			stop := s.Time("ordered-scan")
			rows, err := tbl.Query().
				Where(umzi.Eq("device", umzi.I64(int64(d)))).
				Select("seq").
				OrderBy("seq").
				At(tbl.SnapshotTS()).
				All(ctx)
			stop()
			if err != nil {
				if ctx.Err() == nil {
					s.Errorf("ordered scan device %d: %v", d, err)
				}
				return
			}
			for i, r := range rows {
				if r[0].Int() != int64(i) {
					s.Errorf("ordered scan device %d: row %d has seq %d; groomed snapshot must be a contiguous ordered prefix", d, i, r[0].Int())
					break
				}
			}
			if int64(len(rows)) > mark {
				s.Errorf("ordered scan device %d: snapshot shows %d rows but only %d were acked before the scan", d, len(rows), mark)
			}
			orderedScans.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	fwg.Wait()
	feedersDone.Store(true)
	swg.Wait()

	var appended int64
	for d := range hw {
		appended += hw[d].Load()
	}
	s.Add("rows-appended", appended)
	s.Add("window-scans", windowScans.Load())
	s.Add("ordered-scans", orderedScans.Load())
	if ctx.Err() != nil {
		s.Errorf("timed out before final verification (%d rows appended)", appended)
		return
	}

	// Quiesce and verify the full stream per device survived grooming.
	if err := tbl.Groom(); err != nil {
		s.Fatalf("final groom: %v", err)
	}
	for d := 0; d < devices; d++ {
		n, err := tbl.Query().
			Where(umzi.Eq("device", umzi.I64(int64(d)))).
			At(tbl.SnapshotTS()).
			Count(ctx)
		if err != nil {
			s.Fatalf("final count device %d: %v", d, err)
		}
		if n != int64(rowsPerDevice) {
			s.Errorf("device %d: final count %d, want %d", d, n, rowsPerDevice)
		}
	}
	s.Logf("done: %d rows across %d devices, %d window scans, %d ordered scans",
		appended, devices, windowScans.Load(), orderedScans.Load())
}
