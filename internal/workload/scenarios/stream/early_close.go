// Package stream holds cursor-lifecycle scenarios: streaming Rows
// cursors opened under load and then drained, abandoned half-way, or
// closed immediately. The merge behind a cursor fans out one worker per
// shard, so every abandoned cursor that fails to release its workers is
// a goroutine leak — the invariant here is that the process returns to
// its goroutine baseline after every storm.
package stream

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"umzi"
	"umzi/internal/workload"
)

func init() {
	workload.Register(&workload.Scenario{
		Func: EarlyClose,
		Desc: "open/abandon/drain streaming cursors under concurrent ingest; goroutine count must return to baseline after every storm",
		Attrs: []string{
			workload.AttrReadHeavy,
		},
		Timeout: 2 * time.Minute,
	})
}

// EarlyClose seeds a sharded table, then runs rounds of a cursor storm
// while a writer keeps committing: each storm opens many Rows cursors
// and ends them every way a caller can — full drain through Scan,
// partial drain then Close, Close before the first Next, and context
// cancellation mid-stream followed by more Next calls and a late Close.
// After each storm (and at the end, after the DB itself is closed) the
// goroutine count must settle back to the baseline captured before the
// storm; a stuck shard worker or unreleased epoch gate shows up here.
func EarlyClose(ctx context.Context, s *workload.State) {
	db := s.OpenDB(umzi.DBConfig{
		Store:          umzi.NewMemStore(umzi.LatencyModel{}),
		GroomEvery:     10 * time.Millisecond,
		PostGroomEvery: 100 * time.Millisecond,
	})
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "ticks",
		Columns: []umzi.TableColumn{
			{Name: "series", Kind: umzi.KindInt64},
			{Name: "tick", Kind: umzi.KindInt64},
			{Name: "price", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"series", "tick"},
		ShardKey:   []string{"series"},
	}, umzi.TableOptions{Shards: 4})
	if err != nil {
		s.Fatalf("create table: %v", err)
	}

	// Seed enough rows that cursors have something to stream, and groom
	// so reads fan out across shard workers rather than the live zone.
	const seedRows = 2000
	for lo := 0; lo < seedRows; lo += 100 {
		rows := make([]umzi.Row, 100)
		for i := range rows {
			t := lo + i
			rows[i] = umzi.Row{umzi.I64(int64(t % 8)), umzi.I64(int64(t)), umzi.F64(float64(t))}
		}
		if err := tbl.Upsert(ctx, rows...); err != nil {
			s.Fatalf("seed: %v", err)
		}
	}
	if err := tbl.Groom(); err != nil {
		s.Fatalf("seed groom: %v", err)
	}

	// Background writer: keeps the live zone and groomer busy so cursor
	// teardown races real work.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for t := seedRows; wctx.Err() == nil; t++ {
			_ = tbl.Upsert(wctx, umzi.Row{umzi.I64(int64(t % 8)), umzi.I64(int64(t)), umzi.F64(float64(t))})
			time.Sleep(200 * time.Microsecond)
		}
	}()

	rounds := 6 * s.Scale()
	cursorsPerRound := 24
	rng := rand.New(rand.NewSource(s.Seed() + 99))
	for round := 0; round < rounds && ctx.Err() == nil; round++ {
		baseline := settledGoroutines()
		var swg sync.WaitGroup
		for c := 0; c < cursorsPerRound; c++ {
			swg.Add(1)
			mode := c % 4
			seed := rng.Int63()
			go func(mode int, seed int64) {
				defer swg.Done()
				if err := runCursor(ctx, tbl, mode, seed); err != nil && ctx.Err() == nil {
					s.Errorf("round %d cursor mode %d: %v", round, mode, err)
				}
				s.Add("cursors", 1)
			}(mode, seed)
		}
		swg.Wait()
		if ctx.Err() != nil {
			break
		}
		if n, ok := waitBaseline(baseline); !ok {
			s.Errorf("round %d: %d goroutines still running after storm (baseline %d) — cursor teardown leaked workers", round, n, baseline)
			return
		}
		s.Add("storm-rounds", 1)
	}

	wcancel()
	wwg.Wait()
	if ctx.Err() != nil {
		s.Errorf("timed out mid-storm")
	}
}

// runCursor opens one streaming query and ends it according to mode.
func runCursor(ctx context.Context, tbl *umzi.Table, mode int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rows, err := tbl.Query().
		Where(umzi.Eq("series", umzi.I64(rng.Int63n(8)))).
		At(umzi.MaxTS).
		IncludeLive().
		Run(cctx)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	switch mode {
	case 0: // full drain through Scan, then Close (and a second Close).
		var series, tick int64
		var price float64
		n := 0
		for rows.Next() {
			if err := rows.Scan(&series, &tick, &price); err != nil {
				rows.Close()
				return fmt.Errorf("scan row %d: %w", n, err)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := rows.Close(); err != nil {
			return fmt.Errorf("close after drain: %w", err)
		}
		return rows.Close() // must be a no-op, not a double release
	case 1: // partial drain, then abandon via Close.
		for i := 0; i < 3 && rows.Next(); i++ {
		}
		return rows.Close()
	case 2: // abandon immediately: Close before any Next.
		return rows.Close()
	default: // cancel mid-stream, then keep calling Next, then Close.
		rows.Next()
		cancel()
		for rows.Next() {
		}
		// The stream may end cleanly (already exhausted) or with the
		// cancellation; either way Close must release and not hang.
		rows.Close()
		return nil
	}
}

// settledGoroutines samples the goroutine count after a GC-assisted
// settle, as the baseline for leak detection.
func settledGoroutines() int {
	runtime.GC()
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// waitBaseline polls until the goroutine count drops back to the
// baseline (plus a small slack for runtime helpers), or 5s elapse.
func waitBaseline(baseline int) (int, bool) {
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for {
		runtime.Gosched()
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
