package workload

import (
	"context"
	"strings"
	"testing"
	"time"
)

// Toy scenarios for registry and runner tests. Registered once from
// init — the scenario library itself is not linked into this test
// binary, so the registry here holds only these.

func passToy(ctx context.Context, s *State) {
	defer s.Time("op")()
	s.Add("widgets", 3)
	s.ObserveFreshness(2 * time.Millisecond)
}

func errorToy(ctx context.Context, s *State) {
	s.Errorf("first problem")
	s.Errorf("second problem")
	s.Add("kept-going", 1)
}

func fatalToy(ctx context.Context, s *State) {
	s.Fatalf("fatal problem")
	s.Add("unreachable", 1)
}

func panicToy(ctx context.Context, s *State) {
	panic("boom")
}

func slowToy(ctx context.Context, s *State) {
	<-ctx.Done()
}

func init() {
	Register(&Scenario{Func: passToy, Desc: "passes", Attrs: []string{AttrReadHeavy}})
	Register(&Scenario{Func: errorToy, Desc: "records two failures", Attrs: []string{AttrWriteHeavy}})
	Register(&Scenario{Func: fatalToy, Desc: "aborts", Attrs: []string{AttrWriteHeavy, AttrCrashInjecting}})
	Register(&Scenario{Func: panicToy, Desc: "panics", Attrs: []string{AttrLongRunning}})
	Register(&Scenario{Func: slowToy, Desc: "waits for ctx", Attrs: []string{AttrLongRunning}})
}

func TestDerivedNamesAndLookup(t *testing.T) {
	for _, name := range []string{"workload.passToy", "workload.errorToy", "workload.fatalToy"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if s.Name() != name {
			t.Fatalf("Name() = %q, want %q", s.Name(), name)
		}
	}
	all := Scenarios()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatalf("Scenarios() not sorted: %q before %q", all[i-1].Name(), all[i].Name())
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	expectPanic := func(name string, s *Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	expectPanic("nil func", &Scenario{Desc: "d", Attrs: []string{AttrReadHeavy}})
	expectPanic("anonymous func", &Scenario{
		Func: func(context.Context, *State) {}, Desc: "d", Attrs: []string{AttrReadHeavy},
	})
	expectPanic("no desc", &Scenario{Func: passToy, Attrs: []string{AttrReadHeavy}})
	expectPanic("no attrs", &Scenario{Func: passToy, Desc: "d"})
	expectPanic("unknown attr", &Scenario{Func: passToy, Desc: "d", Attrs: []string{"heavy-metal"}})
	expectPanic("duplicate", &Scenario{Func: passToy, Desc: "d", Attrs: []string{AttrReadHeavy}})
}

func TestMatchAndSelect(t *testing.T) {
	s := &Scenario{Attrs: []string{AttrReadHeavy, AttrWriteHeavy}}
	cases := []struct {
		expr string
		want bool
	}{
		{"", true},
		{"read-heavy", true},
		{"crash-injecting", false},
		{"crash-injecting,read-heavy", true},
		{"read-heavy&write-heavy", true},
		{"read-heavy&crash-injecting", false},
		{"read-heavy&!crash-injecting", true},
		{"!read-heavy", false},
		{" read-heavy , crash-injecting ", true},
	}
	for _, c := range cases {
		got, err := s.Match(c.expr)
		if err != nil || got != c.want {
			t.Errorf("Match(%q) = %v, %v; want %v", c.expr, got, err, c.want)
		}
	}
	if _, err := s.Match("read-hevy"); err == nil {
		t.Error("Match with a typo'd attribute should error")
	}

	sel, err := Select(AttrCrashInjecting)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Name() != "workload.fatalToy" {
		t.Fatalf("Select(crash-injecting) = %v", names(sel))
	}
	if _, err := Select("bogus-attr"); err == nil {
		t.Error("Select with unknown attribute should error")
	}
}

func names(ss []*Scenario) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}

func TestRecorderSummary(t *testing.T) {
	r := &recorder{}
	if r.summary() != nil {
		t.Fatal("empty recorder should summarize to nil")
	}
	for i := 1; i <= 100; i++ {
		r.observe(time.Duration(i) * time.Millisecond)
	}
	sum := r.summary()
	if sum.Count != 100 {
		t.Fatalf("count = %d", sum.Count)
	}
	if sum.P50 != 50 || sum.P90 != 90 || sum.P99 != 99 || sum.Max != 100 {
		t.Fatalf("percentiles = p50 %v p90 %v p99 %v max %v", sum.P50, sum.P90, sum.P99, sum.Max)
	}
	if sum.Mean != 50.5 {
		t.Fatalf("mean = %v", sum.Mean)
	}
}

func TestRunnerOutcomes(t *testing.T) {
	get := func(name string) *Scenario {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("toy scenario %s not registered", name)
		}
		return s
	}
	rep := Run([]*Scenario{
		get("workload.passToy"),
		get("workload.errorToy"),
		get("workload.fatalToy"),
		get("workload.panicToy"),
	}, RunOptions{Scale: 1, Seed: 42}, "toys")

	if rep.Passed {
		t.Fatal("report passed despite failing scenarios")
	}
	byName := map[string]Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}

	pass := byName["workload.passToy"]
	if pass.Status != "pass" || len(pass.Failures) != 0 {
		t.Fatalf("passToy: %+v", pass)
	}
	if pass.Counters["widgets"] != 3 {
		t.Fatalf("passToy counters: %v", pass.Counters)
	}
	if pass.Latency["op"] == nil || pass.Latency["op"].Count != 1 {
		t.Fatalf("passToy latency: %+v", pass.Latency)
	}
	if pass.Freshness == nil || pass.Freshness.Count != 1 {
		t.Fatalf("passToy freshness: %+v", pass.Freshness)
	}

	errs := byName["workload.errorToy"]
	if errs.Status != "fail" || len(errs.Failures) != 2 {
		t.Fatalf("errorToy: %+v", errs)
	}
	if errs.Counters["kept-going"] != 1 {
		t.Fatal("Errorf should not stop the scenario")
	}

	fatal := byName["workload.fatalToy"]
	if fatal.Status != "fail" || len(fatal.Failures) != 1 {
		t.Fatalf("fatalToy: %+v", fatal)
	}
	if fatal.Counters["unreachable"] != 0 {
		t.Fatal("Fatalf should stop the scenario")
	}

	pan := byName["workload.panicToy"]
	if pan.Status != "fail" || len(pan.Failures) != 1 || !strings.Contains(pan.Failures[0], "panic: boom") {
		t.Fatalf("panicToy: %+v", pan)
	}
}

func TestRunnerTimeout(t *testing.T) {
	s, ok := Lookup("workload.slowToy")
	if !ok {
		t.Fatal("slowToy not registered")
	}
	start := time.Now()
	rep := Run([]*Scenario{s}, RunOptions{Timeout: 50 * time.Millisecond}, "slow")
	if rep.Passed {
		t.Fatal("timed-out scenario should fail")
	}
	r := rep.Results[0]
	if len(r.Failures) != 1 || !strings.Contains(r.Failures[0], "timeout") {
		t.Fatalf("failures = %v", r.Failures)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("runner took %v for a 50ms-timeout scenario", elapsed)
	}
}
