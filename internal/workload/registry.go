// Package workload is the registered-scenario harness behind
// cmd/umzi-workload: mixed HTAP scenarios — analytical queries racing
// transactional ingest, crash injection mid-groom, cursor storms —
// that run against an in-process umzi.DB and double as the
// integration-test tier for the rest of the roadmap.
//
// Scenarios self-register by name from their package's init function
// (the Tast registry design): the name is derived from the registering
// package and function ("htap.OrderAnalytics" is func OrderAnalytics
// in scenarios/htap), and each scenario declares attributes
// (read-heavy, write-heavy, crash-injecting, long-running) that the
// runner selects on. A scenario reports failures through its State —
// it keeps running after Errorf, stops at Fatalf — and records latency
// samples, snapshot-freshness samples and counters that the runner
// folds into a JSON report.
package workload

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// The declarative scenario attributes. Registration rejects attributes
// outside this set so a selection expression can never silently match
// nothing because of a typo on either side.
const (
	// AttrReadHeavy marks scenarios dominated by queries.
	AttrReadHeavy = "read-heavy"
	// AttrWriteHeavy marks scenarios dominated by transactional ingest.
	AttrWriteHeavy = "write-heavy"
	// AttrCrashInjecting marks scenarios that inject storage write
	// faults and exercise recovery.
	AttrCrashInjecting = "crash-injecting"
	// AttrLongRunning marks scenarios meant to soak (the runner still
	// bounds them with the scenario timeout).
	AttrLongRunning = "long-running"
	// AttrRemote marks scenarios that drive a running umzi-server over
	// the network (State.OpenClient); they need -remote addr:port and are
	// skipped by attribute selection when none is configured.
	AttrRemote = "remote"
)

var knownAttrs = map[string]bool{
	AttrReadHeavy:      true,
	AttrWriteHeavy:     true,
	AttrCrashInjecting: true,
	AttrLongRunning:    true,
	AttrRemote:         true,
}

// DefaultTimeout bounds a scenario that does not declare its own.
const DefaultTimeout = 2 * time.Minute

// Scenario is one registered workload. Name is not declared: it is
// derived at Register time from the implementing function —
// "<category>.<Func>" where the category is the final element of the
// registering package's path — so names stay consistent with code
// layout by construction.
type Scenario struct {
	// Func implements the scenario. It must be a named top-level
	// function: its name (and package) become the scenario name. The
	// function must honor ctx — the runner cancels it at the timeout.
	Func func(ctx context.Context, s *State)
	// Desc is the one-line description shown by -list.
	Desc string
	// Attrs are the declarative attributes the runner selects on.
	Attrs []string
	// Timeout bounds one run; 0 means DefaultTimeout.
	Timeout time.Duration

	name string
}

// Name returns the derived "<category>.<Func>" name.
func (s *Scenario) Name() string { return s.name }

var (
	regMu    sync.Mutex
	registry = map[string]*Scenario{}
)

// Register adds a scenario to the global registry; scenario packages
// call it from init, and the runner binary blank-imports the bundle
// package (scenarios/all) to trigger those inits. Register panics on
// any malformed registration — a broken scenario library should fail
// the build of every binary that links it, not one run at a time.
func Register(s *Scenario) {
	if s.Func == nil {
		panic("workload: Register called with nil Func")
	}
	name, err := deriveName(s.Func)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	if s.Desc == "" {
		panic(fmt.Sprintf("workload: scenario %s has no Desc", name))
	}
	if len(s.Attrs) == 0 {
		panic(fmt.Sprintf("workload: scenario %s declares no attributes", name))
	}
	for _, a := range s.Attrs {
		if !knownAttrs[a] {
			panic(fmt.Sprintf("workload: scenario %s declares unknown attribute %q", name, a))
		}
	}
	s.name = name
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("workload: scenario %s registered twice", name))
	}
	registry[name] = s
}

// deriveName turns a scenario function into its registry name:
// "umzi/internal/workload/scenarios/htap.OrderAnalytics" becomes
// "htap.OrderAnalytics". Anonymous functions and methods are rejected.
func deriveName(fn func(context.Context, *State)) (string, error) {
	pc := reflect.ValueOf(fn).Pointer()
	f := runtime.FuncForPC(pc)
	if f == nil {
		return "", fmt.Errorf("cannot resolve scenario function")
	}
	full := f.Name() // "path/to/pkg.Func"
	short := full
	if i := strings.LastIndex(full, "/"); i >= 0 {
		short = full[i+1:]
	}
	parts := strings.Split(short, ".")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", fmt.Errorf("scenario func %q must be a named top-level function", full)
	}
	if strings.HasPrefix(parts[1], "func") || strings.Contains(parts[1], "-") {
		return "", fmt.Errorf("scenario func %q is anonymous; scenarios must be named top-level functions", full)
	}
	return parts[0] + "." + parts[1], nil
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []*Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Lookup resolves one scenario by its exact name.
func Lookup(name string) (*Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Match reports whether the scenario satisfies an attribute expression.
// The expression is a comma-separated list of clauses ORed together;
// within a clause, '&'-separated terms are ANDed, and a term may be
// negated with a leading '!'. The empty expression matches everything.
//
//	"read-heavy,write-heavy"        read-heavy OR write-heavy
//	"write-heavy&!crash-injecting"  write-heavy AND NOT crash-injecting
func (s *Scenario) Match(expr string) (bool, error) {
	if strings.TrimSpace(expr) == "" {
		return true, nil
	}
	has := make(map[string]bool, len(s.Attrs))
	for _, a := range s.Attrs {
		has[a] = true
	}
	for _, clause := range strings.Split(expr, ",") {
		ok := true
		any := false
		for _, term := range strings.Split(clause, "&") {
			term = strings.TrimSpace(term)
			if term == "" {
				continue
			}
			any = true
			want := true
			if strings.HasPrefix(term, "!") {
				want = false
				term = strings.TrimSpace(term[1:])
			}
			if !knownAttrs[term] {
				return false, fmt.Errorf("workload: unknown attribute %q in expression (known: %s)", term, strings.Join(KnownAttrs(), ", "))
			}
			if has[term] != want {
				ok = false
			}
		}
		if any && ok {
			return true, nil
		}
	}
	return false, nil
}

// Select returns the registered scenarios matching the attribute
// expression, sorted by name.
func Select(expr string) ([]*Scenario, error) {
	var out []*Scenario
	for _, s := range Scenarios() {
		ok, err := s.Match(expr)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// KnownAttrs lists the valid attribute names, sorted.
func KnownAttrs() []string {
	out := make([]string, 0, len(knownAttrs))
	for a := range knownAttrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
