package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Figure S2 (extension): the unified query surface. The DB front end
// replaces the engine's six query entry points with one declarative
// QuerySpec compiled by the planner into a point get, an index(-only)
// scan or an executor plan. This experiment measures what the
// indirection costs — builder-compiled queries against the legacy entry
// point each one replaces, on the same 8-shard ledger — and what the
// streaming cursor buys: time-to-first-rows of a huge ordered scan
// under early close and under limit pushdown.

// FigS2QuerySurface compares compiled QuerySpec queries against the
// legacy entry points they replace (normalized per operation: 1.0 = the
// legacy path) and reports the streaming early-close/limit wins as
// notes.
func FigS2QuerySurface(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S2",
		Title:    "Unified query surface vs legacy entry points (extension)",
		XLabel:   "operation",
		YLabel:   "normalized latency (legacy = 1)",
		Baseline: "the legacy entry point of each column",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	lat := storage.LatencyModel{PerOp: 100 * time.Microsecond}
	eng, err := NewShardedLedger("s2surface", 8, rows, lat)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ctx := context.Background()

	drain := func(spec wildfire.QuerySpec, want int) error {
		qr, err := eng.RunQuery(ctx, spec)
		if err != nil {
			return err
		}
		defer qr.Close()
		n := 0
		for qr.Cursor.Next() {
			n++
		}
		if err := qr.Cursor.Err(); err != nil {
			return err
		}
		if want > 0 && n != want {
			return fmt.Errorf("bench: query returned %d rows, want %d", n, want)
		}
		return nil
	}

	legacy := Series{Name: "legacy entry point"}
	unified := Series{Name: "Query() builder"}
	var benchErr error
	addPair := func(label string, legacyOp, unifiedOp func()) {
		res.X = append(res.X, label)
		l := timeAvg(s.Reps, legacyOp)
		u := timeAvg(s.Reps, unifiedOp)
		legacy.Y = append(legacy.Y, 1)
		if l > 0 {
			unified.Y = append(unified.Y, u/l)
		} else {
			unified.Y = append(unified.Y, 0)
		}
	}

	// Point gets: Get vs a full-primary-key-pinned spec.
	rng := rand.New(rand.NewSource(11))
	const gets = 64
	ids := make([]int64, gets)
	for i := range ids {
		ids[i] = rng.Int63n(int64(rows))
	}
	addPair(fmt.Sprintf("%d point gets", gets),
		func() {
			for _, id := range ids {
				if _, _, err := eng.Get(nil, []keyenc.Value{keyenc.I64(id)}, wildfire.QueryOptions{}); err != nil {
					benchErr = err
				}
			}
		},
		func() {
			for _, id := range ids {
				if err := drain(wildfire.QuerySpec{Filter: exec.Eq("id", keyenc.I64(id))}, 1); err != nil {
					benchErr = err
				}
			}
		})

	// Limited ordered scatter-gather scan: ScanOn vs OrderBy+Limit.
	const limit = 256
	addPair(fmt.Sprintf("ordered scan limit %d", limit),
		func() {
			out, err := eng.ScanOn("", nil, nil, nil, wildfire.QueryOptions{Limit: limit})
			if err != nil || len(out) != limit {
				benchErr = fmt.Errorf("bench: legacy limited scan: %d rows, err %v", len(out), err)
			}
		},
		func() {
			if err := drain(wildfire.QuerySpec{OrderBy: []string{"id"}, Limit: limit}, limit); err != nil {
				benchErr = err
			}
		})

	// Full ordered index-only scan: IndexOnlyScan vs a covered spec.
	addPair("full index-only scan",
		func() {
			out, err := eng.IndexOnlyScan(nil, nil, nil, wildfire.QueryOptions{})
			if err != nil || len(out) != rows {
				benchErr = fmt.Errorf("bench: legacy index-only scan: %d rows, err %v", len(out), err)
			}
		},
		func() {
			if err := drain(wildfire.QuerySpec{
				Columns: []string{"id", "payload"},
				OrderBy: []string{"id"},
			}, rows); err != nil {
				benchErr = err
			}
		})
	if benchErr != nil {
		return nil, benchErr
	}
	res.Series = append(res.Series, legacy, unified)

	// Streaming wins, reported against the full drain.
	full := timeAvg(s.Reps, func() {
		if err := drain(wildfire.QuerySpec{Columns: []string{"id", "payload"}, OrderBy: []string{"id"}}, rows); err != nil {
			benchErr = err
		}
	})
	early := timeAvg(s.Reps, func() {
		qr, err := eng.RunQuery(ctx, wildfire.QuerySpec{Columns: []string{"id", "payload"}, OrderBy: []string{"id"}})
		if err != nil {
			benchErr = err
			return
		}
		for i := 0; i < 10 && qr.Cursor.Next(); i++ {
		}
		qr.Close()
	})
	limited := timeAvg(s.Reps, func() {
		if err := drain(wildfire.QuerySpec{Columns: []string{"id", "payload"}, OrderBy: []string{"id"}, Limit: 10}, 10); err != nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("full %s-row ordered stream drains in %.1f ms; reading 10 rows and closing early takes %.1f ms (workers cancelled), and declaring Limit(10) %.2f ms (pushdown stops every shard's index walk)",
			humanCount(rows), full*1000, early*1000, limited*1000),
		"builder columns should sit near 1.0: the planner compiles to the same access paths the legacy entry points hard-coded")
	return res, nil
}
