package bench

// Scale holds every sweep parameter of the evaluation. SmallScale keeps
// the full sweep structure of the paper at laptop-friendly sizes (a few
// seconds per figure); PaperScale matches the paper's axes (minutes to
// hours, dominated by the 100M-entry run builds of Figures 8 and 9).
type Scale struct {
	// Reps is the number of repetitions averaged per cell (§8.1: three).
	Reps int

	// RunSizes sweeps the entries per run for Figures 8 and 9.
	RunSizes []int
	// LookupBatch is the default lookup batch size (paper: 1000).
	LookupBatch int

	// MultiRunCount and MultiRunSize shape the Figure 10/11 dataset
	// (paper: 20 runs of 100K entries).
	MultiRunCount int
	MultiRunSize  int
	// BatchSweep sweeps lookup batch sizes (Fig 10a/11a).
	BatchSweep []int
	// RunCountSweep sweeps the number of runs (Fig 10b/11b).
	RunCountSweep []int
	// ScanRanges sweeps range-scan sizes (Fig 10c/11c).
	ScanRanges []int

	// End-to-end parameters (Figures 12–15). RecordsPerCycle records are
	// ingested per groom cycle for Warmup unmeasured cycles followed by
	// Cycles measured ones; a post-groom runs every PostGroomEvery cycles
	// (paper: ~100K records/s, groom 1s, post-groom 20s, 100s total).
	Warmup          int
	Cycles          int
	RecordsPerCycle int
	PostGroomEvery  int
	// ReaderCounts sweeps concurrent readers (Fig 12; paper shows 4–52).
	ReaderCounts []int
	// UpdateRates sweeps the IoT update percentage p (Fig 13).
	UpdateRates []int

	// ShardCounts sweeps the number of table shards for the sharded
	// scatter-gather experiment (Figure S1, an extension: the paper runs
	// Umzi inside sharded Wildfire but evaluates a single shard).
	ShardCounts []int
	// ShardScanRows is the total dataset size of the shard experiment;
	// it stays fixed across shard counts so the sweep isolates the
	// scatter-gather effect on the same data.
	ShardScanRows int
	// AggSelectivities sweeps the filter selectivity of the aggregation
	// pushdown ablation (A7).
	AggSelectivities []float64
	// SecondaryCardinalities sweeps the secondary column's distinct-value
	// count for the index-selection ablation (A8); selectivity of the
	// equality query is 1/cardinality.
	SecondaryCardinalities []int

	// WALWriters sweeps the number of concurrent committers of the
	// commit-log durability experiment (Figure S3).
	WALWriters []int
	// WALCommits is the number of transactions each writer commits per
	// Figure S3 cell.
	WALCommits int
	// WALRowsPerCommit is the rows per transaction in Figure S3.
	WALRowsPerCommit int

	// ServeClients sweeps the number of concurrent network clients of
	// the serving-layer experiment (Figure S4).
	ServeClients []int
	// ServeOpsPerClient is the operations (one commit + one point query)
	// each client performs per Figure S4 cell.
	ServeOpsPerClient int
}

// SmallScale returns the default laptop-scale configuration used by the
// Go benchmarks and the quick CLI mode.
func SmallScale() Scale {
	return Scale{
		Reps:                   3,
		RunSizes:               []int{1_000, 10_000, 100_000, 1_000_000},
		LookupBatch:            1000,
		MultiRunCount:          20,
		MultiRunSize:           20_000,
		BatchSweep:             []int{1, 10, 100, 1000, 10_000},
		RunCountSweep:          []int{1, 10, 20, 40},
		ScanRanges:             []int{1, 10, 100, 1_000, 10_000, 100_000},
		Warmup:                 8,
		Cycles:                 16,
		RecordsPerCycle:        2_000,
		PostGroomEvery:         4,
		ReaderCounts:           []int{1, 2, 4, 8},
		UpdateRates:            []int{0, 20, 40, 60, 80, 100},
		ShardCounts:            []int{1, 2, 4, 8},
		ShardScanRows:          16_000,
		AggSelectivities:       []float64{0.001, 0.01, 0.1, 1},
		SecondaryCardinalities: []int{4, 16, 64, 256},
		WALWriters:             []int{1, 8, 32},
		WALCommits:             120,
		WALRowsPerCommit:       4,
		ServeClients:           []int{1, 4, 16, 64},
		ServeOpsPerClient:      40,
	}
}

// PaperScale returns the full axes of the paper's figures. Expect long
// runtimes: Figure 8/9 build runs of up to 100M entries.
func PaperScale() Scale {
	return Scale{
		Reps:     3,
		RunSizes: []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 20_000_000, 40_000_000, 60_000_000, 80_000_000, 100_000_000},

		LookupBatch:            1000,
		MultiRunCount:          20,
		MultiRunSize:           100_000,
		BatchSweep:             []int{1, 10, 100, 1000, 10_000},
		RunCountSweep:          []int{1, 10, 20, 40, 60, 80, 100},
		ScanRanges:             []int{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000},
		Warmup:                 20,
		Cycles:                 100,
		RecordsPerCycle:        100_000,
		PostGroomEvery:         20,
		ReaderCounts:           []int{1, 4, 16, 28, 40, 52},
		UpdateRates:            []int{0, 20, 40, 60, 80, 100},
		ShardCounts:            []int{1, 2, 4, 8, 16},
		ShardScanRows:          200_000,
		AggSelectivities:       []float64{0.0001, 0.001, 0.01, 0.1, 1},
		SecondaryCardinalities: []int{4, 16, 64, 256, 1024},
		WALWriters:             []int{1, 8, 32, 128},
		WALCommits:             400,
		WALRowsPerCommit:       4,
		ServeClients:           []int{1, 4, 16, 32, 64},
		ServeOpsPerClient:      200,
	}
}

// TinyScale is for unit tests of the harness itself.
func TinyScale() Scale {
	return Scale{
		Reps:                   1,
		RunSizes:               []int{500, 1000},
		LookupBatch:            64,
		MultiRunCount:          4,
		MultiRunSize:           2_000,
		BatchSweep:             []int{1, 256},
		RunCountSweep:          []int{1, 4},
		ScanRanges:             []int{1, 64},
		Warmup:                 2,
		Cycles:                 6,
		RecordsPerCycle:        400,
		PostGroomEvery:         2,
		ReaderCounts:           []int{1, 2},
		UpdateRates:            []int{0, 100},
		ShardCounts:            []int{1, 2},
		ShardScanRows:          2_000,
		AggSelectivities:       []float64{0.01, 1},
		SecondaryCardinalities: []int{4, 64},
		WALWriters:             []int{1, 8},
		WALCommits:             24,
		WALRowsPerCommit:       4,
		ServeClients:           []int{1, 4},
		ServeOpsPerClient:      8,
	}
}
