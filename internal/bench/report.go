// Package bench regenerates the experimental evaluation of the paper
// (§8): one driver per figure (8–15) plus ablation studies for the design
// decisions called out in DESIGN.md. Each driver builds its workload,
// runs the sweep the paper describes, and reports normalized numbers the
// same way the paper does — against a named baseline cell — so the
// shapes are directly comparable even though the absolute hardware
// differs.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Series is one line of a figure: a label plus y values aligned with the
// x labels of the owning Result.
type Series struct {
	Name string
	Y    []float64
}

// Result is one reproduced figure.
type Result struct {
	Figure   string   // e.g. "Figure 8"
	Title    string   // e.g. "Index Building Performance"
	XLabel   string   // e.g. "# tuples in an index run"
	YLabel   string   // e.g. "normalized time"
	X        []string // x-axis tick labels
	Series   []Series
	Baseline string   // what the numbers are normalized against
	Notes    []string // observations to compare against the paper's claims
}

// Print renders the result as an aligned table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", r.Figure, r.Title)
	if r.Baseline != "" {
		fmt.Fprintf(w, "  normalized to: %s\n", r.Baseline)
	}
	fmt.Fprintf(w, "  y: %s\n\n", r.YLabel)

	head := append([]string{r.XLabel}, r.X...)
	rows := [][]string{head}
	for _, s := range r.Series {
		row := []string{s.Name}
		for _, y := range s.Y {
			row = append(row, formatY(y))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(head))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", b.String())
		if ri == 0 {
			fmt.Fprintf(w, "  %s\n", strings.Repeat("-", len(b.String())))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatY(y float64) string {
	switch {
	case y == 0:
		return "0"
	case y >= 1000:
		return fmt.Sprintf("%.0f", y)
	case y >= 10:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.3f", y)
	}
}

// normalize divides every y value of every series by base.
func normalize(series []Series, base float64) []Series {
	if base == 0 {
		return series
	}
	out := make([]Series, len(series))
	for i, s := range series {
		ys := make([]float64, len(s.Y))
		for j, y := range s.Y {
			ys[j] = y / base
		}
		out[i] = Series{Name: s.Name, Y: ys}
	}
	return out
}

// timeIt runs f once and returns the elapsed wall time in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// timeAvg runs f reps times and returns the average elapsed seconds. The
// paper reports every experiment as an average over three runs (§8.1).
func timeAvg(reps int, f func()) float64 {
	if reps <= 0 {
		reps = 3
	}
	total := 0.0
	for i := 0; i < reps; i++ {
		total += timeIt(f)
	}
	return total / float64(reps)
}

// humanCount renders 1000 as "1K", 1500000 as "1.5M".
func humanCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	case n >= 1000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
