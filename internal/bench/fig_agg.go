package bench

import (
	"fmt"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Ablation A7: aggregation pushdown vs client-side scan+aggregate. The
// analytical executor evaluates filter and aggregates block-at-a-time
// inside each shard and ships partial aggregates to the coordinator;
// the client-side baseline runs the pre-executor plan — scatter-gather
// scan, materialize every record at the coordinator, then filter and
// aggregate there. The sweep varies the filter's selectivity: at low
// selectivity the pushdown additionally skips whole blocks via the
// columnar min/max synopses, so the gap widens.

// ordersTable is the A7 table: id is the primary/sharding key, amount
// is the filter and aggregation column. Amount equals id, so a
// threshold predicate has an exact selectivity and ingestion order
// gives groomed blocks tight amount ranges — the regime synopsis
// skipping is designed for.
func ordersTable(name string) (wildfire.TableDef, wildfire.IndexSpec) {
	table := wildfire.TableDef{
		Name: name,
		Columns: []columnar.Column{
			{Name: "id", Kind: keyenc.KindInt64},
			{Name: "region", Kind: keyenc.KindString},
			{Name: "amount", Kind: keyenc.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}
	spec := wildfire.IndexSpec{Sort: []string{"id"}}
	return table, spec
}

var orderRegions = []string{"amer", "emea", "apac", "latam"}

// NewShardedOrders builds a sharded orders engine over latency-modeled
// shared storage and ingests rows in lockstep groom rounds. Row i has
// amount == i and a region cycling through orderRegions. The root
// BenchmarkAggPushdown reuses it so the Go benchmark and the A7 sweep
// measure the same workload.
func NewShardedOrders(name string, shards, rows int, lat storage.LatencyModel) (*wildfire.ShardedEngine, error) {
	return newShardedOrdersOn(storage.NewMemStore(lat), name, shards, rows)
}

// newShardedOrdersOn is NewShardedOrders over a caller-owned store, so
// drivers that inspect the written block objects (Figure S5) keep a
// handle to them.
func newShardedOrdersOn(store *storage.MemStore, name string, shards, rows int) (*wildfire.ShardedEngine, error) {
	table, spec := ordersTable(name)
	cfg := wildfire.ShardedConfig{
		Table:  table,
		Index:  spec,
		Shards: shards,
		Store:  store,
	}
	cfg.IndexTuning.BlockSize = 4096
	// These drivers measure the read paths; ingest setup opts out of
	// per-commit log syncs (Figure S3 measures the write path).
	cfg.Durability.SyncPolicy = wildfire.SyncOff
	eng, err := wildfire.NewShardedEngine(cfg)
	if err != nil {
		return nil, err
	}
	const groomRounds = 8
	per := rows / groomRounds
	id := int64(0)
	for r := 0; r < groomRounds; r++ {
		count := per
		if r == groomRounds-1 {
			count = rows - int(id)
		}
		for i := 0; i < count; i++ {
			row := wildfire.Row{
				keyenc.I64(id),
				keyenc.Str(orderRegions[id%int64(len(orderRegions))]),
				keyenc.I64(id),
			}
			if err := eng.UpsertRows(0, row); err != nil {
				eng.Close()
				return nil, err
			}
			id++
		}
		if err := eng.Groom(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

// AggPushdownPlan is the A7 query: COUNT and SUM(amount) of the orders
// with amount <= threshold.
func AggPushdownPlan(threshold int64) exec.Plan {
	return exec.Plan{
		Filter: exec.Le("amount", keyenc.I64(threshold)),
		Aggs:   []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "amount"}},
	}
}

// ClientSideAggregate is the baseline: scatter-gather the matching-free
// scan, materialize every record at the coordinator, then filter and
// aggregate there.
func ClientSideAggregate(eng *wildfire.ShardedEngine, threshold int64) (count, sum int64, err error) {
	recs, err := eng.ScanUnordered(nil, nil, nil, wildfire.QueryOptions{})
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range recs {
		if amount := rec.Row[2].Int(); amount <= threshold {
			count++
			sum += amount
		}
	}
	return count, sum, nil
}

// AblationAggPushdown sweeps the filter selectivity and reports, per
// selectivity, the pushdown's latency relative to the client-side
// baseline (client-side = 1.0 everywhere).
func AblationAggPushdown(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A7",
		Title:    "Aggregation pushdown vs client-side scan+aggregate",
		XLabel:   "selectivity",
		YLabel:   "normalized latency",
		Baseline: "client-side scan+aggregate at the same selectivity (1.0)",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	sels := s.AggSelectivities
	if len(sels) == 0 {
		sels = []float64{0.001, 0.01, 0.1, 1}
	}
	const shards = 4
	lat := storage.LatencyModel{PerOp: 100 * time.Microsecond}
	eng, err := NewShardedOrders("a7", shards, rows, lat)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	push := Series{Name: "pushdown (Execute)"}
	client := Series{Name: "client-side"}
	for _, sel := range sels {
		res.X = append(res.X, fmt.Sprintf("%g", sel))
		threshold := int64(sel*float64(rows)) - 1
		plan := AggPushdownPlan(threshold)

		// Both paths must agree before either is worth timing.
		pres, err := eng.Execute(plan, wildfire.QueryOptions{})
		if err != nil {
			return nil, err
		}
		ccount, csum, err := ClientSideAggregate(eng, threshold)
		if err != nil {
			return nil, err
		}
		if ccount == 0 {
			if len(pres.Rows) != 0 {
				return nil, fmt.Errorf("bench: pushdown returned %v for an empty selection", pres.Rows)
			}
		} else if pres.Rows[0][0].Int() != ccount || pres.Rows[0][1].Int() != csum {
			return nil, fmt.Errorf("bench: pushdown (%v, %v) != client-side (%d, %d)",
				pres.Rows[0][0], pres.Rows[0][1], ccount, csum)
		}

		var benchErr error
		tPush := timeAvg(s.Reps, func() {
			if _, err := eng.Execute(plan, wildfire.QueryOptions{}); err != nil {
				benchErr = err
			}
		})
		tClient := timeAvg(s.Reps, func() {
			if _, _, err := ClientSideAggregate(eng, threshold); err != nil {
				benchErr = err
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		push.Y = append(push.Y, tPush/tClient)
		client.Y = append(client.Y, 1)
		if sel == sels[0] {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"at selectivity %g over %s rows × %d shards: pushdown %.2f ms, client-side %.2f ms (%.1fx)",
				sel, humanCount(rows), shards, tPush*1000, tClient*1000, tClient/tPush))
		}
	}
	res.Series = []Series{push, client}
	res.Notes = append(res.Notes,
		"pushdown ships per-shard partial aggregates (sum/count pairs) instead of rows; the client-side path materializes every record at the coordinator",
		"at low selectivity the pushdown also skips whole blocks via columnar min/max synopses, so its advantage grows as selectivity falls")
	return res, nil
}
