package bench

import (
	"fmt"
	"strings"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Figure S5 (extension): encoded columnar blocks with vectorized
// execution against the scalar row-at-a-time executor. The sweep reuses
// the A7 orders workload — amount == id, so a threshold predicate has an
// exact selectivity — and runs the same aggregation plan through both
// executor paths. The scalar baseline is the pre-encoding executor
// preserved behind QueryOptions.ScalarExec: per-row Value calls, per-row
// predicate evaluation, min/max synopsis skipping only. The default path
// evaluates predicates vectorized over the encoded columns (selection
// bitmaps, comparisons on dictionary codes and bit-packed words) and
// skips blocks by bloom filter on equality predicates. The driver also
// reports the on-store footprint of the encoded blocks against the
// version-1 plain layout of the same data.

// FigS5EncodedScan sweeps filter selectivity and reports vectorized
// latency normalized to the scalar executor at the same selectivity.
func FigS5EncodedScan(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S5",
		Title:    "Encoded vectorized scan vs scalar row-at-a-time scan",
		XLabel:   "selectivity",
		YLabel:   "normalized latency",
		Baseline: "scalar executor (ScalarExec) at the same selectivity (1.0)",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	sels := s.AggSelectivities
	if len(sels) == 0 {
		sels = []float64{0.001, 0.01, 0.1, 1}
	}
	const shards = 4
	store := storage.NewMemStore(storage.LatencyModel{PerOp: 100 * time.Microsecond})
	eng, err := newShardedOrdersOn(store, "s5", shards, rows)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	encBytes, plainBytes, nblocks, err := blockStoreFootprint(store, "tbl/s5/")
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"on-store footprint: %d blocks, %d encoded bytes vs %d plain-layout bytes (%.1f%% of plain)",
		nblocks, encBytes, plainBytes, 100*float64(encBytes)/float64(plainBytes)))

	vec := Series{Name: "vectorized encoded (default)"}
	scalar := Series{Name: "scalar row-at-a-time"}
	for _, sel := range sels {
		res.X = append(res.X, fmt.Sprintf("%g", sel))
		threshold := int64(sel*float64(rows)) - 1
		plan := AggPushdownPlan(threshold)

		// Both executors must agree before either is worth timing.
		vres, err := eng.Execute(plan, wildfire.QueryOptions{})
		if err != nil {
			return nil, err
		}
		sres, err := eng.Execute(plan, wildfire.QueryOptions{ScalarExec: true})
		if err != nil {
			return nil, err
		}
		if len(vres.Rows) != len(sres.Rows) {
			return nil, fmt.Errorf("bench: vectorized %d result rows, scalar %d", len(vres.Rows), len(sres.Rows))
		}
		if len(vres.Rows) > 0 &&
			(vres.Rows[0][0].Int() != sres.Rows[0][0].Int() ||
				vres.Rows[0][1].Int() != sres.Rows[0][1].Int()) {
			return nil, fmt.Errorf("bench: vectorized (%v, %v) != scalar (%v, %v)",
				vres.Rows[0][0], vres.Rows[0][1], sres.Rows[0][0], sres.Rows[0][1])
		}

		var benchErr error
		tVec := timeAvg(s.Reps, func() {
			if _, err := eng.Execute(plan, wildfire.QueryOptions{}); err != nil {
				benchErr = err
			}
		})
		tScalar := timeAvg(s.Reps, func() {
			if _, err := eng.Execute(plan, wildfire.QueryOptions{ScalarExec: true}); err != nil {
				benchErr = err
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		vec.Y = append(vec.Y, tVec/tScalar)
		scalar.Y = append(scalar.Y, 1)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"selectivity %g over %s rows × %d shards: vectorized %.2f ms, scalar %.2f ms (%.1fx)",
			sel, humanCount(rows), shards, tVec*1000, tScalar*1000, tScalar/tVec))
	}
	res.Series = []Series{vec, scalar}
	res.Notes = append(res.Notes,
		"both paths skip blocks via min/max synopses; the vectorized path additionally evaluates the surviving blocks through selection bitmaps over the encoded columns and, when every visible block covers a disjoint primary-key range, emits rows without the multi-version winner map",
		"equality predicates on bloom-filtered columns (primary key, index equality columns) can skip blocks by content; the range sweep above exercises the synopsis+vectorized path")
	return res, nil
}

// blockStoreFootprint sums the marshaled size of every groomed and
// post-groomed block under prefix against the plain version-1 layout of
// the same data.
func blockStoreFootprint(store *storage.MemStore, prefix string) (enc, plain, blocks int, err error) {
	names, err := store.List(prefix)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, name := range names {
		if !strings.Contains(name, "/groomed/block-") && !strings.Contains(name, "/post/block-") {
			continue
		}
		data, err := store.Get(name)
		if err != nil {
			return 0, 0, 0, err
		}
		blk, err := columnar.Unmarshal(data)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bench: block %s: %w", name, err)
		}
		enc += len(data)
		plain += blk.PlainSize()
		blocks++
	}
	if blocks == 0 {
		return 0, 0, 0, fmt.Errorf("bench: no blocks under %s", prefix)
	}
	return enc, plain, blocks, nil
}
