package bench

import (
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Ablation A8: executor index selection — a selective equality query on
// a non-key column served by a covering secondary index vs the same
// plan forced onto the zone-scan path. The sweep varies the secondary
// column's cardinality (selectivity = 1/cardinality): at high
// selectivity the scan wins (the index path pays a per-row back-check
// against the primary), and as the predicate narrows the index lookup
// pulls away — the access-path crossover every optimizer textbook
// draws, reproduced on the multi-zone store.

// secondaryOrdersTable: id is the primary/sharding key; region is the
// non-key secondary column ("r0000".."rNNNN", cycling); amount rides in
// the secondary as an included column so COUNT/SUM(amount) plans are
// covered.
func secondaryOrdersTable(name string) (wildfire.TableDef, wildfire.IndexSpec, wildfire.SecondaryIndexSpec) {
	table := wildfire.TableDef{
		Name: name,
		Columns: []columnar.Column{
			{Name: "id", Kind: keyenc.KindInt64},
			{Name: "region", Kind: keyenc.KindString},
			{Name: "amount", Kind: keyenc.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}
	primary := wildfire.IndexSpec{Equality: []string{"id"}}
	secondary := wildfire.SecondaryIndexSpec{
		Name: "by_region",
		IndexSpec: wildfire.IndexSpec{
			Equality: []string{"region"},
			Included: []string{"amount"},
		},
	}
	return table, primary, secondary
}

// SecondaryRegionName formats region i the way NewSecondaryOrders
// ingests it.
func SecondaryRegionName(i int) string { return fmt.Sprintf("r%05d", i) }

// NewSecondaryOrders builds a sharded orders engine with a covering
// secondary index on region and ingests rows in lockstep groom rounds:
// row i has amount == i and region i % regions. The root
// BenchmarkSecondaryLookup reuses it so the Go benchmark and the A8
// sweep measure the same workload.
func NewSecondaryOrders(name string, shards, rows, regions int, lat storage.LatencyModel) (*wildfire.ShardedEngine, error) {
	table, primary, secondary := secondaryOrdersTable(name)
	cfg := wildfire.ShardedConfig{
		Table:       table,
		Index:       primary,
		Secondaries: []wildfire.SecondaryIndexSpec{secondary},
		Shards:      shards,
		Store:       storage.NewMemStore(lat),
	}
	cfg.IndexTuning.BlockSize = 4096
	// These drivers measure the read paths; ingest setup opts out of
	// per-commit log syncs (Figure S3 measures the write path).
	cfg.Durability.SyncPolicy = wildfire.SyncOff
	eng, err := wildfire.NewShardedEngine(cfg)
	if err != nil {
		return nil, err
	}
	const groomRounds = 8
	per := rows / groomRounds
	id := int64(0)
	for r := 0; r < groomRounds; r++ {
		count := per
		if r == groomRounds-1 {
			count = rows - int(id)
		}
		for i := 0; i < count; i++ {
			row := wildfire.Row{
				keyenc.I64(id),
				keyenc.Str(SecondaryRegionName(int(id) % regions)),
				keyenc.I64(id),
			}
			if err := eng.UpsertRows(0, row); err != nil {
				eng.Close()
				return nil, err
			}
			id++
		}
		if err := eng.Groom(); err != nil {
			eng.Close()
			return nil, err
		}
		// Post-groom halfway through, so the first half of the data ends
		// up in the post-groomed zone and the later rounds stay groomed —
		// queries exercise both zones, as on a long-running table.
		if r == groomRounds/2 {
			if err := eng.PostGroom(); err != nil {
				eng.Close()
				return nil, err
			}
			if err := eng.SyncIndex(); err != nil {
				eng.Close()
				return nil, err
			}
		}
	}
	return eng, nil
}

// SecondaryLookupPlan is the A8 query: COUNT and SUM(amount) of the
// orders in one region — covered by the by_region secondary.
func SecondaryLookupPlan(region string) exec.Plan {
	return exec.Plan{
		Filter: exec.Eq("region", keyenc.Str(region)),
		Aggs:   []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "amount"}},
	}
}

// AblationSecondaryIndex sweeps the secondary column's cardinality and
// reports, per selectivity, the index-selected plan's latency relative
// to the forced zone scan (scan = 1.0 everywhere).
func AblationSecondaryIndex(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A8",
		Title:    "Secondary-index selection vs zone scan",
		XLabel:   "selectivity (1/cardinality)",
		YLabel:   "normalized latency",
		Baseline: "forced zone scan at the same selectivity (1.0)",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	cards := s.SecondaryCardinalities
	if len(cards) == 0 {
		cards = []int{4, 16, 64, 256}
	}
	const shards = 4

	indexed := Series{Name: "index-selected (Execute)"}
	scanned := Series{Name: "forced scan"}
	for _, card := range cards {
		if card > rows {
			card = rows
		}
		res.X = append(res.X, fmt.Sprintf("1/%d", card))
		eng, err := NewSecondaryOrders(fmt.Sprintf("a8c%d", card), shards, rows, card, storage.LatencyModel{})
		if err != nil {
			return nil, err
		}
		plan := SecondaryLookupPlan(SecondaryRegionName(card / 2))

		// Both paths must agree before either is worth timing.
		ires, err := eng.Execute(plan, wildfire.QueryOptions{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		sres, err := eng.Execute(plan, wildfire.QueryOptions{NoIndexSelection: true})
		if err != nil {
			eng.Close()
			return nil, err
		}
		if len(ires.Rows) != 1 || len(sres.Rows) != 1 ||
			ires.Rows[0][0].Int() != sres.Rows[0][0].Int() ||
			ires.Rows[0][1].Int() != sres.Rows[0][1].Int() {
			eng.Close()
			return nil, fmt.Errorf("bench: index plan %v != scan plan %v", ires.Rows, sres.Rows)
		}

		var benchErr error
		tIdx := timeAvg(s.Reps, func() {
			if _, err := eng.Execute(plan, wildfire.QueryOptions{}); err != nil {
				benchErr = err
			}
		})
		tScan := timeAvg(s.Reps, func() {
			if _, err := eng.Execute(plan, wildfire.QueryOptions{NoIndexSelection: true}); err != nil {
				benchErr = err
			}
		})
		eng.Close()
		if benchErr != nil {
			return nil, benchErr
		}
		indexed.Y = append(indexed.Y, tIdx/tScan)
		scanned.Y = append(scanned.Y, 1.0)
	}
	res.Series = []Series{indexed, scanned}
	res.Notes = append(res.Notes,
		"expect the index-selected plan to pull away as the predicate narrows (covered lookup + primary back-check vs full zone scan)")
	return res, nil
}
