package bench

import (
	"fmt"
	"time"

	"umzi/internal/exec"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Figure S6 (extension): intra-shard parallel scans and the bounded
// decoded-block cache. The A7/S5 orders workload is built once into a
// single shard, then the same aggregation scan runs at increasing
// ScanParallelism over the same encoded blocks. Two regimes:
//
//   - cold cache: the engine is reopened per measurement, so every
//     block is fetched (latency-modeled storage) and decoded on the
//     query path — the regime where the worker pool overlaps I/O,
//     decode and vectorized evaluation;
//   - warm cache: repeated queries against a resident cache, isolating
//     the parallel evaluate-and-merge of the scan itself.
//
// A final pass runs the 4-worker scan against a deliberately starved
// block-cache budget and reports occupancy versus budget and eviction
// churn, checking the byte ceiling holds under parallel pressure.

// FigS6ReadPath sweeps scan workers and reports latency normalized to
// the single-worker configuration.
func FigS6ReadPath(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S6",
		Title:    "Intra-shard parallel scan: workers vs read latency",
		XLabel:   "scan workers",
		YLabel:   "normalized latency",
		Baseline: "ScanParallelism=1 over the same encoded blocks (1.0)",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	reps := s.Reps
	if reps <= 0 {
		reps = 3
	}
	store := storage.NewMemStore(storage.LatencyModel{PerOp: 100 * time.Microsecond})
	seed, err := newShardedOrdersOn(store, "s6", 1, rows)
	if err != nil {
		return nil, err
	}
	plan := AggPushdownPlan(int64(rows)) // selectivity 1: every block scans
	want, err := seed.Execute(plan, wildfire.QueryOptions{})
	if err != nil {
		seed.Close()
		return nil, err
	}
	seed.Close()
	if len(want.Rows) != 1 {
		return nil, fmt.Errorf("bench: s6 reference returned %d rows", len(want.Rows))
	}
	wantCount, wantSum := want.Rows[0][0].Int(), want.Rows[0][1].Int()

	// open reopens the groomed dataset with the read-path knobs under
	// test; nothing is re-ingested, so every configuration scans the
	// exact same blocks.
	open := func(workers int, cacheBytes int64) (*wildfire.ShardedEngine, error) {
		table, spec := ordersTable("s6")
		cfg := wildfire.ShardedConfig{
			Table:           table,
			Index:           spec,
			Shards:          1,
			Store:           store,
			ScanParallelism: workers,
			BlockCacheBytes: cacheBytes,
		}
		cfg.IndexTuning.BlockSize = 4096
		cfg.Durability.SyncPolicy = wildfire.SyncOff
		return wildfire.NewShardedEngine(cfg)
	}
	check := func(got *exec.Result) error {
		if len(got.Rows) != 1 || got.Rows[0][0].Int() != wantCount || got.Rows[0][1].Int() != wantSum {
			return fmt.Errorf("bench: s6 parallel scan diverged from reference")
		}
		return nil
	}

	cold := Series{Name: "cold cache (fetch+decode+scan)"}
	warm := Series{Name: "warm cache (scan only)"}
	var cold1, warm1 float64
	for _, w := range []int{1, 2, 4, 8} {
		res.X = append(res.X, fmt.Sprintf("%d", w))
		var tCold float64
		var tWarm float64
		for r := 0; r < reps; r++ {
			eng, err := open(w, 0)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			got, err := eng.Execute(plan, wildfire.QueryOptions{})
			if err != nil {
				eng.Close()
				return nil, err
			}
			tCold += time.Since(t0).Seconds()
			if err := check(got); err != nil {
				eng.Close()
				return nil, err
			}
			if r == reps-1 {
				// Last reopen doubles as the warm-cache fixture.
				var benchErr error
				tWarm = timeAvg(reps, func() {
					if _, err := eng.Execute(plan, wildfire.QueryOptions{}); err != nil {
						benchErr = err
					}
				})
				if benchErr != nil {
					eng.Close()
					return nil, benchErr
				}
			}
			eng.Close()
		}
		tCold /= float64(reps)
		if w == 1 {
			cold1, warm1 = tCold, tWarm
		}
		cold.Y = append(cold.Y, tCold/cold1)
		warm.Y = append(warm.Y, tWarm/warm1)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d workers over %s rows: cold %.2f ms (%.1fx), warm %.2f ms (%.1fx)",
			w, humanCount(rows), tCold*1000, cold1/tCold, tWarm*1000, warm1/tWarm))
	}
	res.Series = []Series{cold, warm}

	// Starved-cache pass: the byte budget must hold while 4 workers
	// fetch and evict concurrently, and the scan must still be correct.
	// The budget is half the decoded working set, so every full sweep is
	// forced to evict no matter the scale.
	probe, err := open(4, 0)
	if err != nil {
		return nil, err
	}
	if _, err := probe.Execute(plan, wildfire.QueryOptions{}); err != nil {
		probe.Close()
		return nil, err
	}
	workingSet := probe.BlockCache().Stats().Bytes
	probe.Close()
	starvedBudget := workingSet / 2
	if starvedBudget < 8<<10 {
		starvedBudget = 8 << 10
	}
	eng, err := open(4, starvedBudget)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	var maxBytes int64
	for r := 0; r < reps*2; r++ {
		got, err := eng.Execute(plan, wildfire.QueryOptions{})
		if err != nil {
			return nil, err
		}
		if err := check(got); err != nil {
			return nil, err
		}
		if st := eng.BlockCache().Stats(); st.Bytes > maxBytes {
			maxBytes = st.Bytes
		}
	}
	st := eng.BlockCache().Stats()
	if maxBytes > starvedBudget {
		return nil, fmt.Errorf("bench: block-cache occupancy %d exceeded the %d-byte budget", maxBytes, starvedBudget)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"starved-cache pass (budget %d B, 4 workers): max occupancy %d B (ceiling held), %d evictions, %d hits / %d misses, %d dedup'd fetches",
		starvedBudget, maxBytes, st.Evictions, st.Hits, st.Misses, st.Dedups))
	return res, nil
}
