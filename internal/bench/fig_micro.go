package bench

import (
	"fmt"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// groupBitsLookup splits keys into many small equality groups (16 sort
// values per group) so the offset array has plenty of distinct hashes —
// the lookup-heavy figures use it.
const groupBitsLookup = 4

// groupBitsScan splits keys into huge equality groups (2^20 sort values)
// so range scans up to 1M entries stay inside one group — the scan sweeps
// use it.
const groupBitsScan = 20

// Fig08IndexBuild reproduces Figure 8: the time to build one index run as
// the number of entries grows, for the three index definitions,
// normalized to I1 at the smallest size. Expected shape: near-linear
// scaling; I3 cheapest (one fewer key column); the column-count effect is
// small next to the sort cost.
func Fig08IndexBuild(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 8",
		Title:    "Index Building Performance",
		XLabel:   "# tuples in an index run",
		YLabel:   "normalized time",
		Baseline: fmt.Sprintf("I1 @ %s tuples", humanCount(s.RunSizes[0])),
	}
	var base float64
	for _, v := range Variants() {
		d := dataset{variant: v, groupBits: groupBitsLookup}
		series := Series{Name: v.String()}
		for _, n := range s.RunSizes {
			if len(res.Series) == 0 {
				res.X = append(res.X, humanCount(n))
			}
			rdef := v.Def().RunDef()
			elapsed := timeAvg(s.Reps, func() {
				b, err := run.NewBuilder(rdef, run.Meta{Zone: types.ZoneGroomed, Blocks: types.BlockRange{Min: 1, Max: 1}}, 0)
				if err != nil {
					panic(err)
				}
				for i := 0; i < n; i++ {
					if err := b.AddValues(d.eqVals(int64(i)), d.sortVals(int64(i)), []keyenc.Value{keyenc.I64(int64(i))}, types.TS(i+1), types.RID{Offset: uint32(i)}); err != nil {
						panic(err)
					}
				}
				if _, _, err := b.Finish(); err != nil {
					panic(err)
				}
			})
			if base == 0 {
				base = elapsed
			}
			series.Y = append(series.Y, elapsed)
		}
		res.Series = append(res.Series, series)
	}
	res.Series = normalize(res.Series, base)
	res.Notes = append(res.Notes,
		"expect near-linear growth with run size; I3 fastest (one fewer key column)")
	return res, nil
}

// singleRunIndex builds one index holding exactly one run of n entries.
func singleRunIndex(v IndexVariant, n int) (*core.Index, dataset, error) {
	d := dataset{variant: v, groupBits: groupBitsLookup}
	ix, err := newIndex(fmt.Sprintf("f9-%s-%d", v, n), v, nil)
	if err != nil {
		return nil, d, err
	}
	if err := buildRuns(ix, d, SeqKeys(n), 1); err != nil {
		ix.Close()
		return nil, d, err
	}
	return ix, d, nil
}

// Fig09SingleRun reproduces Figure 9: batched lookups against a single
// run with varying run size, for sequential (9a) and random (9b) query
// batches and all three definitions, normalized to the sequential query
// on the smallest I1 run. Expected shape: mild growth with run size (the
// offset array plus binary search absorb most of it); I2 slower because
// two equality columns make each bucket of the offset array larger.
func Fig09SingleRun(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 9",
		Title:    "Single Run Query Performance",
		XLabel:   "# tuples in an index run",
		YLabel:   "normalized lookup time",
		Baseline: fmt.Sprintf("sequential I1 @ %s tuples", humanCount(s.RunSizes[0])),
	}
	var base float64
	for _, mode := range []string{"seq", "rand"} {
		for _, v := range Variants() {
			series := Series{Name: fmt.Sprintf("%s/%s", mode, v)}
			for _, n := range s.RunSizes {
				if len(res.Series) == 0 {
					res.X = append(res.X, humanCount(n))
				}
				ix, d, err := singleRunIndex(v, n)
				if err != nil {
					return nil, err
				}
				qb := NewQueryBatch(n, 7)
				elapsed := timeAvg(s.Reps, func() {
					var keys []int64
					if mode == "seq" {
						keys = qb.Sequential(s.LookupBatch)
					} else {
						keys = qb.Random(s.LookupBatch)
					}
					if _, err := lookupBatch(ix, d, keys); err != nil {
						panic(err)
					}
				})
				ix.Close()
				if base == 0 {
					base = elapsed
				}
				series.Y = append(series.Y, elapsed)
			}
			res.Series = append(res.Series, series)
		}
	}
	res.Series = normalize(res.Series, base)
	res.Notes = append(res.Notes,
		"expect limited growth with run size (offset array + binary search)",
		"expect I2 slower: two equality columns dilute the offset array")
	return res, nil
}

// multiRunIndex builds an I1 index over nRuns runs of runSize entries,
// with either sequential or random key ingestion and scan-friendly
// grouping.
func multiRunIndex(name string, nRuns, runSize int, randomIngest bool) (*core.Index, dataset, error) {
	d := dataset{variant: I1, groupBits: groupBitsScan}
	ix, err := newIndex(name, I1, nil)
	if err != nil {
		return nil, d, err
	}
	n := nRuns * runSize
	var keys KeyGen = SeqKeys(n)
	if randomIngest {
		keys = NewRandKeys(n, 99)
	}
	if err := buildRuns(ix, d, keys, nRuns); err != nil {
		ix.Close()
		return nil, d, err
	}
	return ix, d, nil
}

// figMultiRun implements Figures 10 and 11 (the same sweeps with
// sequential vs random key ingestion).
func figMultiRun(s Scale, randomIngest bool) (*Result, error) {
	figure, title := "Figure 10", "Multi-run queries, sequentially ingested keys"
	if randomIngest {
		figure, title = "Figure 11", "Multi-run queries, randomly ingested keys"
	}
	res := &Result{
		Figure: figure,
		Title:  title,
		XLabel: "sweep",
		YLabel: "normalized time (per sweep, see series names)",
	}

	// (a) batch size sweep over the default dataset.
	ix, d, err := multiRunIndex(figure+"-a", s.MultiRunCount, s.MultiRunSize, randomIngest)
	if err != nil {
		return nil, err
	}
	domain := s.MultiRunCount * s.MultiRunSize
	qb := NewQueryBatch(domain, 11)
	var aSeq, aRand Series
	aSeq.Name = "a:seq-query (per key)"
	aRand.Name = "a:rand-query (per key)"
	var aBase float64
	for _, bs := range s.BatchSweep {
		res.X = append(res.X, fmt.Sprintf("a:batch=%s", humanCount(bs)))
		tSeq := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.SequentialFrom(bs)); err != nil {
				panic(err)
			}
		}) / float64(bs)
		tRand := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.Random(bs)); err != nil {
				panic(err)
			}
		}) / float64(bs)
		if aBase == 0 {
			aBase = tSeq
		}
		aSeq.Y = append(aSeq.Y, tSeq/aBase)
		aRand.Y = append(aRand.Y, tRand/aBase)
	}
	ix.Close()

	// (b) number-of-runs sweep at the default batch size.
	var bSeq, bRand Series
	bSeq.Name = "b:seq-query"
	bRand.Name = "b:rand-query"
	var bBase float64
	for _, nr := range s.RunCountSweep {
		res.X = append(res.X, fmt.Sprintf("b:runs=%d", nr))
		ix, d, err := multiRunIndex(fmt.Sprintf("%s-b%d", figure, nr), nr, s.MultiRunSize, randomIngest)
		if err != nil {
			return nil, err
		}
		dom := nr * s.MultiRunSize
		qb := NewQueryBatch(dom, 13)
		tSeq := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.SequentialFrom(s.LookupBatch)); err != nil {
				panic(err)
			}
		})
		tRand := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.Random(s.LookupBatch)); err != nil {
				panic(err)
			}
		})
		ix.Close()
		if bBase == 0 {
			bBase = tSeq
		}
		bSeq.Y = append(bSeq.Y, tSeq/bBase)
		bRand.Y = append(bRand.Y, tRand/bBase)
	}

	// (c) scan-range sweep with the priority-queue method (§7.1.2).
	ix, d, err = multiRunIndex(figure+"-c", s.MultiRunCount, s.MultiRunSize, randomIngest)
	if err != nil {
		return nil, err
	}
	var cSeq, cRand Series
	cSeq.Name = "c:seq-range"
	cRand.Name = "c:rand-range"
	var cBase float64
	scanQB := NewQueryBatch(domain, 17)
	for _, rng := range s.ScanRanges {
		res.X = append(res.X, fmt.Sprintf("c:range=%s", humanCount(rng)))
		doScan := func(start int64) {
			group := start >> groupBitsScan
			lo := start & (1<<groupBitsScan - 1)
			hi := lo + int64(rng) - 1
			_, err := ix.RangeScan(core.ScanOptions{
				Equality: []keyenc.Value{keyenc.I64(group)},
				SortLo:   []keyenc.Value{keyenc.I64(lo)},
				SortHi:   []keyenc.Value{keyenc.I64(hi)},
				TS:       types.MaxTS,
				Method:   core.MethodPQ,
			})
			if err != nil {
				panic(err)
			}
		}
		tSeq := timeAvg(s.Reps, func() { doScan(scanQB.SequentialFrom(1)[0]) })
		tRand := timeAvg(s.Reps, func() { doScan(scanQB.Random(1)[0]) })
		if cBase == 0 {
			cBase = tSeq
		}
		cSeq.Y = append(cSeq.Y, tSeq/cBase)
		cRand.Y = append(cRand.Y, tRand/cBase)
	}
	ix.Close()

	// Pad series with zeros so every series aligns with the combined x
	// axis (a, then b, then c).
	nA, nB, nC := len(s.BatchSweep), len(s.RunCountSweep), len(s.ScanRanges)
	pad := func(pre, post int, ys []float64) []float64 {
		out := make([]float64, 0, pre+len(ys)+post)
		out = append(out, make([]float64, pre)...)
		out = append(out, ys...)
		return append(out, make([]float64, post)...)
	}
	aSeq.Y, aRand.Y = pad(0, nB+nC, aSeq.Y), pad(0, nB+nC, aRand.Y)
	bSeq.Y, bRand.Y = pad(nA, nC, bSeq.Y), pad(nA, nC, bRand.Y)
	cSeq.Y, cRand.Y = pad(nA+nB, 0, cSeq.Y), pad(nA+nB, 0, cRand.Y)
	res.Series = []Series{aSeq, aRand, bSeq, bRand, cSeq, cRand}

	if randomIngest {
		res.Notes = append(res.Notes,
			"random ingestion defeats run synopses: sequential ~= random queries in (a)/(b)",
			"(c) scan time still linear in range")
	} else {
		res.Notes = append(res.Notes,
			"(a) batching amortizes block reads; sequential << random (synopsis pruning)",
			"(b) sequential ~flat with #runs, random grows ~linearly",
			"(c) scan time linear in range; sequential ~= random starts")
	}
	return res, nil
}

// Fig10MultiRunSeq reproduces Figure 10.
func Fig10MultiRunSeq(s Scale) (*Result, error) { return figMultiRun(s, false) }

// Fig11MultiRunRand reproduces Figure 11.
func Fig11MultiRunRand(s Scale) (*Result, error) { return figMultiRun(s, true) }
