package bench

import (
	"bytes"
	"strings"
	"testing"

	"umzi/internal/storage"
)

// The harness tests run every figure driver at TinyScale: they verify the
// drivers complete, produce the right series structure, and that the
// headline shape claims hold even at tiny sizes where they are robust.

func TestFig08Shape(t *testing.T) {
	s := TinyScale()
	res, err := Fig08IndexBuild(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 (I1,I2,I3)", len(res.Series))
	}
	if len(res.X) != len(s.RunSizes) {
		t.Fatalf("x axis = %d, want %d", len(res.X), len(s.RunSizes))
	}
	// Build time grows with run size for every definition.
	for _, series := range res.Series {
		if series.Y[len(series.Y)-1] <= series.Y[0]/2 {
			t.Errorf("%s: build time did not grow with run size: %v", series.Name, series.Y)
		}
	}
	// Baseline cell is 1.0 by construction.
	if y := res.Series[0].Y[0]; y < 0.99 || y > 1.01 {
		t.Errorf("baseline cell = %v, want 1.0", y)
	}
}

func TestFig09Shape(t *testing.T) {
	res, err := Fig09SingleRun(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 { // {seq,rand} x {I1,I2,I3}
		t.Fatalf("series = %d, want 6", len(res.Series))
	}
	for _, s := range res.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s: non-positive normalized time %v", s.Name, y)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	s := TinyScale()
	res, err := Fig10MultiRunSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(res.Series))
	}
	wantX := len(s.BatchSweep) + len(s.RunCountSweep) + len(s.ScanRanges)
	if len(res.X) != wantX {
		t.Fatalf("x axis = %d, want %d", len(res.X), wantX)
	}
	for _, series := range res.Series {
		if len(series.Y) != wantX {
			t.Fatalf("%s: %d values, want %d", series.Name, len(series.Y), wantX)
		}
	}
	// Batching must reduce per-key time (Fig 10a claim). The paper notes
	// variance at batch size 1, so allow slack at tiny scale.
	aSeq := res.Series[0].Y[:len(s.BatchSweep)]
	if aSeq[len(aSeq)-1] > aSeq[0]*1.2 {
		t.Errorf("per-key time did not drop with batch size: %v", aSeq)
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11MultiRunRand(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(res.Series))
	}
}

func TestFig12Shape(t *testing.T) {
	s := TinyScale()
	res, err := Fig12ConcurrentReaders(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(s.ReaderCounts) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(s.ReaderCounts))
	}
	for _, series := range res.Series {
		if len(series.Y) != s.Cycles {
			t.Fatalf("%s: %d cycles, want %d", series.Name, len(series.Y), s.Cycles)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	s := TinyScale()
	res, err := Fig13UpdateRates(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(s.UpdateRates) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(s.UpdateRates))
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14PurgeLevels(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 (none/half/all)", len(res.Series))
	}
}

func TestFig15Shape(t *testing.T) {
	res, err := Fig15Evolve(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
}

func TestFigS5Shape(t *testing.T) {
	res, err := FigS5EncodedScan(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2 (vectorized, scalar)", len(res.Series))
	}
	for _, s := range res.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s: non-positive normalized time %v", s.Name, y)
			}
		}
	}
	// The encoded on-store footprint must beat the plain layout on this
	// dataset; the driver reports it in the first note. Timing claims are
	// asserted only by the committed figure output, not here.
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "on-store footprint") {
		t.Fatalf("missing footprint note: %v", res.Notes)
	}
}

func TestEncodedFootprintSmallerThanPlain(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	eng, err := newShardedOrdersOn(store, "fp", 2, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enc, plain, blocks, err := blockStoreFootprint(store, "tbl/fp/")
	if err != nil {
		t.Fatal(err)
	}
	if blocks == 0 {
		t.Fatal("no blocks written")
	}
	if enc >= plain {
		t.Errorf("encoded bytes %d not smaller than plain layout %d over %d blocks", enc, plain, blocks)
	}
}

func TestAblations(t *testing.T) {
	s := TinyScale()
	for name, f := range map[string]func(Scale) (*Result, error){
		"offset-array": AblationOffsetArray,
		"reconcile":    AblationReconcile,
		"synopsis":     AblationSynopsis,
		"batch-sort":   AblationBatchSort,
		"merge-policy": AblationMergePolicy,
		"non-persist":  AblationNonPersisted,
		"secondary":    AblationSecondaryIndex,
	} {
		res, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Series) == 0 || len(res.X) == 0 {
			t.Fatalf("%s: empty result", name)
		}
	}
}

func TestAblationSynopsisPrunes(t *testing.T) {
	res, err := AblationSynopsis(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// With pruning disabled the lookup must not be faster.
	ys := res.Series[0].Y
	if ys[1] < ys[0]*0.8 {
		t.Errorf("disabling the synopsis made lookups faster: %v", ys)
	}
}

func TestResultPrint(t *testing.T) {
	res := &Result{
		Figure:   "Figure X",
		Title:    "test",
		XLabel:   "x",
		YLabel:   "normalized",
		X:        []string{"1", "2"},
		Series:   []Series{{Name: "s", Y: []float64{1, 2.5}}},
		Baseline: "cell(0,0)",
		Notes:    []string{"a note"},
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "normalized", "2.500", "a note", "cell(0,0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestUpdateSkewPattern(t *testing.T) {
	u := NewUpdateSkew(10, 1000, 1)
	first := u.Cycle()
	if len(first) != 1000 {
		t.Fatalf("cycle size = %d", len(first))
	}
	// First cycle is all new keys.
	if u.Domain() != 1000 {
		t.Fatalf("domain after first cycle = %d", u.Domain())
	}
	// Subsequent cycles: ~10% updates of the last cycle at p=10.
	second := u.Cycle()
	updates := 0
	for _, k := range second {
		if k < 1000 {
			updates++
		}
	}
	if updates < 50 || updates > 400 {
		t.Errorf("updates in second cycle = %d, want roughly 100-200 at p=10%%", updates)
	}
}

func TestUpdateSkewAllUpdates(t *testing.T) {
	u := NewUpdateSkew(100, 500, 2)
	u.Cycle()
	domainAfter1 := u.Domain()
	u.Cycle()
	// p=100: after the first cycle everything is an update — the domain
	// must stop growing (paper: "all ingested records are updates after
	// the first groom cycle").
	if u.Domain() != domainAfter1 {
		t.Errorf("domain grew under p=100%%: %d -> %d", domainAfter1, u.Domain())
	}
}

func TestUpdateSkewReadOnly(t *testing.T) {
	u := NewUpdateSkew(0, 300, 3)
	u.Cycle()
	u.Cycle()
	if u.Domain() != 600 {
		t.Errorf("p=0 must generate only new keys: domain = %d, want 600", u.Domain())
	}
}

func TestKeyGens(t *testing.T) {
	if SeqKeys(10).Key(3) != 3 || SeqKeys(10).N() != 10 {
		t.Error("SeqKeys")
	}
	r := NewRandKeys(100, 7)
	seen := map[int64]bool{}
	for i := 0; i < r.N(); i++ {
		k := r.Key(i)
		if k < 0 || k >= 100 || seen[k] {
			t.Fatalf("RandKeys not a permutation at %d: %d", i, k)
		}
		seen[k] = true
	}
	qb := NewQueryBatch(50, 9)
	if got := qb.Sequential(5); len(got) != 5 {
		t.Error("Sequential batch size")
	}
	if got := qb.Random(5); len(got) != 5 {
		t.Error("Random batch size")
	}
	first := qb.SequentialFrom(3)
	second := qb.SequentialFrom(3)
	if second[0] != first[2]+1 {
		t.Error("SequentialFrom must continue from the cursor")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int]string{
		1:         "1",
		999:       "999",
		1000:      "1K",
		1500:      "1.5K",
		1_000_000: "1M",
		2_500_000: "2.5M",
	}
	for n, want := range cases {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", n, got, want)
		}
	}
}
