package bench

import (
	"fmt"
	"time"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// Ablation studies for the design decisions DESIGN.md calls out. These go
// beyond the paper's figures: they isolate individual mechanisms so the
// contribution of each is visible.

// AblationOffsetArray measures lookup latency with the hash offset array
// disabled and at several widths (§4.2: the array narrows the initial
// binary-search range).
func AblationOffsetArray(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A1",
		Title:    "Offset array width vs lookup latency",
		XLabel:   "offset array",
		YLabel:   "normalized lookup time",
		Baseline: "offset array disabled",
	}
	n := s.MultiRunSize * 4
	var base float64
	series := Series{Name: "batched lookups"}
	for _, bits := range []uint8{0, 6, 10, 12} {
		label := "off"
		if bits > 0 {
			label = fmt.Sprintf("%d bits", bits)
		}
		res.X = append(res.X, label)
		d := dataset{variant: I1, groupBits: groupBitsLookup}
		def := I1.Def()
		def.HashBits = bits
		cfg := core.Config{
			Name:  fmt.Sprintf("a1-%d", bits),
			Def:   def,
			Store: storage.NewMemStore(storage.LatencyModel{}),
		}
		if bits == 0 {
			cfg.DisableOffsetArray = true
		}
		ix, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := buildRuns(ix, d, SeqKeys(n), 1); err != nil {
			ix.Close()
			return nil, err
		}
		qb := NewQueryBatch(n, 3)
		elapsed := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.Random(s.LookupBatch)); err != nil {
				panic(err)
			}
		})
		ix.Close()
		if base == 0 {
			base = elapsed
		}
		series.Y = append(series.Y, elapsed/base)
	}
	res.Series = []Series{series}
	res.Notes = append(res.Notes, "expect wider arrays to shrink the binary-search window and speed lookups")
	return res, nil
}

// AblationReconcile compares the set and priority-queue reconciliation
// methods (§7.1.2) as the scan range grows: the set approach must keep
// intermediate results in memory, the queue streams.
func AblationReconcile(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A2",
		Title:    "Set vs priority-queue reconciliation",
		XLabel:   "scan range",
		YLabel:   "normalized scan time",
		Baseline: "set approach at the smallest range",
	}
	ix, d, err := multiRunIndex("a2", s.MultiRunCount, s.MultiRunSize, false)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	_ = d
	var setS, pqS Series
	setS.Name = "set"
	pqS.Name = "priority queue"
	var base float64
	for _, rng := range s.ScanRanges {
		res.X = append(res.X, humanCount(rng))
		scan := func(m core.Method) float64 {
			return timeAvg(s.Reps, func() {
				_, err := ix.RangeScan(core.ScanOptions{
					Equality: []keyenc.Value{keyenc.I64(0)},
					SortLo:   []keyenc.Value{keyenc.I64(0)},
					SortHi:   []keyenc.Value{keyenc.I64(int64(rng) - 1)},
					TS:       types.MaxTS,
					Method:   m,
				})
				if err != nil {
					panic(err)
				}
			})
		}
		tSet := scan(core.MethodSet)
		tPQ := scan(core.MethodPQ)
		if base == 0 {
			base = tSet
		}
		setS.Y = append(setS.Y, tSet/base)
		pqS.Y = append(pqS.Y, tPQ/base)
	}
	res.Series = []Series{setS, pqS}
	res.Notes = append(res.Notes, "both linear in range; the set approach pays for the result set, the queue for heap ops")
	return res, nil
}

// AblationSynopsis isolates run-synopsis pruning (§4.2) under sequential
// ingestion, where it shines, with pruning force-disabled as the control.
func AblationSynopsis(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A3",
		Title:    "Run synopsis pruning",
		XLabel:   "configuration",
		YLabel:   "normalized batch lookup time",
		Baseline: "synopsis enabled",
	}
	build := func(name string, disable bool) (float64, int64, error) {
		d := dataset{variant: I1, groupBits: groupBitsScan}
		cfg := core.Config{
			Name:            name,
			Def:             I1.Def(),
			Store:           storage.NewMemStore(storage.LatencyModel{}),
			DisableSynopsis: disable,
		}
		ix, err := core.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		defer ix.Close()
		if err := buildRuns(ix, d, SeqKeys(s.MultiRunCount*s.MultiRunSize), s.MultiRunCount); err != nil {
			return 0, 0, err
		}
		qb := NewQueryBatch(s.MultiRunCount*s.MultiRunSize, 5)
		elapsed := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.SequentialFrom(s.LookupBatch)); err != nil {
				panic(err)
			}
		})
		return elapsed, ix.Stats().RunsPruned, nil
	}
	on, prunedOn, err := build("a3-on", false)
	if err != nil {
		return nil, err
	}
	off, prunedOff, err := build("a3-off", true)
	if err != nil {
		return nil, err
	}
	res.X = []string{"enabled", "disabled"}
	res.Series = []Series{{Name: "sequential batch", Y: []float64{1, off / on}}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("runs pruned: %d with synopsis, %d without", prunedOn, prunedOff),
		"expect disabled synopsis to search every run")
	return res, nil
}

// AblationBatchSort compares batched lookups (keys sorted, each run read
// once, §7.2) against issuing the same keys as individual point lookups.
func AblationBatchSort(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A4",
		Title:    "Sorted batch lookups vs individual lookups",
		XLabel:   "batch size",
		YLabel:   "normalized total time",
		Baseline: "batched at smallest size",
	}
	// Charge a per-read latency so the I/O amortization of batching is
	// visible (the paper's runs live on SSD, not in free memory).
	d := dataset{variant: I1, groupBits: groupBitsScan}
	cfg := core.Config{
		Name:  "a4",
		Def:   I1.Def(),
		Store: storage.NewMemStore(storage.LatencyModel{PerOp: 50 * time.Microsecond}),
	}
	ix, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	if err := buildRuns(ix, d, SeqKeys(s.MultiRunCount*s.MultiRunSize), s.MultiRunCount); err != nil {
		return nil, err
	}
	domain := s.MultiRunCount * s.MultiRunSize
	qb := NewQueryBatch(domain, 29)
	var batched, single Series
	batched.Name = "batched (sorted)"
	single.Name = "individual"
	var base float64
	for _, bs := range s.BatchSweep {
		res.X = append(res.X, humanCount(bs))
		keys := qb.Random(bs)
		tBatch := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, keys); err != nil {
				panic(err)
			}
		})
		tSingle := timeAvg(s.Reps, func() {
			for _, k := range keys {
				if _, _, err := ix.PointLookup(d.eqVals(k), d.sortVals(k), types.MaxTS); err != nil {
					panic(err)
				}
			}
		})
		if base == 0 {
			base = tBatch
		}
		batched.Y = append(batched.Y, tBatch/base)
		single.Y = append(single.Y, tSingle/base)
	}
	res.Series = []Series{batched, single}
	res.Notes = append(res.Notes, "expect batching to win as size grows (each run scanned once)")
	return res, nil
}

// AblationMergePolicy sweeps the K and T merge knobs (§5.3) and reports
// both the lookup latency and the write amplification after a fixed
// ingest, exposing the trade-off the hybrid policy tunes.
func AblationMergePolicy(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A5",
		Title:    "Merge policy knobs (K, T)",
		XLabel:   "(K,T)",
		YLabel:   "normalized (lookup time | bytes written)",
		Baseline: "K=2,T=2",
	}
	configs := []struct{ k, t int }{{2, 2}, {2, 4}, {4, 4}, {8, 4}, {4, 10}}
	var lat, wamp Series
	lat.Name = "lookup time"
	wamp.Name = "bytes written"
	var baseLat, baseW float64
	for _, c := range configs {
		res.X = append(res.X, fmt.Sprintf("K=%d,T=%d", c.k, c.t))
		d := dataset{variant: I1, groupBits: groupBitsLookup}
		store := storage.NewMemStore(storage.LatencyModel{})
		cfg := core.Config{
			Name:  fmt.Sprintf("a5-%d-%d", c.k, c.t),
			Def:   I1.Def(),
			Store: store,
		}
		cfg.K, cfg.T = c.k, c.t
		ix, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		n := s.MultiRunCount * s.MultiRunSize
		per := n / s.MultiRunCount
		idx := 0
		for r := 0; r < s.MultiRunCount; r++ {
			if err := buildOneCycle(ix, d, SeqKeys(n), uint64(r+1), idx, per); err != nil {
				ix.Close()
				return nil, err
			}
			idx += per
			if err := ix.Quiesce(); err != nil {
				ix.Close()
				return nil, err
			}
		}
		qb := NewQueryBatch(idx, 31)
		elapsed := timeAvg(s.Reps, func() {
			if _, err := lookupBatch(ix, d, qb.Random(s.LookupBatch)); err != nil {
				panic(err)
			}
		})
		written := float64(store.Stats().Snapshot().BytesWritten)
		ix.Close()
		if baseLat == 0 {
			baseLat, baseW = elapsed, written
		}
		lat.Y = append(lat.Y, elapsed/baseLat)
		wamp.Y = append(wamp.Y, written/baseW)
	}
	res.Series = []Series{lat, wamp}
	res.Notes = append(res.Notes, "expect small K / small T to favor lookups and pay write amplification; large K the reverse")
	return res, nil
}

// AblationNonPersisted measures shared-storage write traffic with and
// without non-persisted levels (§6.1).
func AblationNonPersisted(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Ablation A6",
		Title:    "Non-persisted levels: shared-storage write traffic",
		XLabel:   "non-persisted groomed levels",
		YLabel:   "normalized bytes written",
		Baseline: "all levels persisted",
	}
	series := Series{Name: "bytes written"}
	var base float64
	for _, npl := range []int{0, 1, 2} {
		res.X = append(res.X, fmt.Sprintf("%d", npl))
		d := dataset{variant: I1, groupBits: groupBitsLookup}
		store := storage.NewMemStore(storage.LatencyModel{})
		cfg := core.Config{
			Name:                      fmt.Sprintf("a6-%d", npl),
			Def:                       I1.Def(),
			Store:                     store,
			GroomedLevels:             4,
			NonPersistedGroomedLevels: npl,
			K:                         2,
			T:                         2,
		}
		ix, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		n := s.MultiRunCount * s.MultiRunSize
		per := n / s.MultiRunCount
		idx := 0
		for r := 0; r < s.MultiRunCount; r++ {
			if err := buildOneCycle(ix, d, SeqKeys(n), uint64(r+1), idx, per); err != nil {
				ix.Close()
				return nil, err
			}
			idx += per
			if err := ix.Quiesce(); err != nil {
				ix.Close()
				return nil, err
			}
		}
		written := float64(store.Stats().Snapshot().BytesWritten)
		ix.Close()
		if base == 0 {
			base = written
		}
		series.Y = append(series.Y, written/base)
	}
	res.Series = []Series{series}
	res.Notes = append(res.Notes, "expect fewer shared-storage writes as more low levels stay local")
	return res, nil
}

// buildOneCycle ingests keys[idx:idx+count] as groom cycle `cycle`.
func buildOneCycle(ix *core.Index, d dataset, keys KeyGen, cycle uint64, idx, count int) error {
	entries := make([]run.Entry, 0, count)
	for i := 0; i < count; i++ {
		e, err := d.entry(ix, keys.Key(idx+i), types.MakeTS(cycle, uint32(i)), types.RID{Zone: types.ZoneGroomed, Block: cycle, Offset: uint32(i)})
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}
	return ix.BuildRun(entries, types.BlockRange{Min: cycle, Max: cycle})
}
