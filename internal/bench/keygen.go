package bench

import (
	"math/rand"
	"sync/atomic"
)

// Key generation mirrors §8.1: a synthetic generator produces 8-byte
// integer keys, either sequential — simulating time-correlated keys — or
// random (uniform, no temporal correlation). Queries likewise use
// sequential or random key batches (§8.3).

// KeyGen produces the n keys of a dataset in ingestion order.
type KeyGen interface {
	// Key returns the i-th ingested key.
	Key(i int) int64
	// N returns the dataset size.
	N() int
}

// SeqKeys generates keys 0,1,2,...: ingestion order equals key order, so
// per-run synopses cover disjoint ranges and prune well.
type SeqKeys int

// Key implements KeyGen.
func (s SeqKeys) Key(i int) int64 { return int64(i) }

// N implements KeyGen.
func (s SeqKeys) N() int { return int(s) }

// RandKeys generates a random permutation of [0,n): every key exists
// exactly once but ingestion order is uncorrelated with key order, which
// defeats synopsis pruning (§8.3.3).
type RandKeys struct {
	perm []int64
}

// NewRandKeys builds a permutation with the given seed.
func NewRandKeys(n int, seed int64) *RandKeys {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return &RandKeys{perm: perm}
}

// Key implements KeyGen.
func (r *RandKeys) Key(i int) int64 { return r.perm[i] }

// N implements KeyGen.
func (r *RandKeys) N() int { return len(r.perm) }

// QueryBatch produces one batch of query keys over the key domain [0,n).
type QueryBatch struct {
	rng *rand.Rand
	n   int64
	seq int64
}

// NewQueryBatch returns a batch generator over the domain [0,n).
func NewQueryBatch(n int, seed int64) *QueryBatch {
	return &QueryBatch{rng: rand.New(rand.NewSource(seed)), n: int64(n)}
}

// Sequential returns size consecutive keys starting at a random position
// (wrapping), modeling time-correlated query batches.
func (q *QueryBatch) Sequential(size int) []int64 {
	start := q.rng.Int63n(q.n)
	out := make([]int64, size)
	for i := range out {
		out[i] = (start + int64(i)) % q.n
	}
	return out
}

// SequentialFrom returns size consecutive keys from a rolling cursor, so
// successive batches walk the domain like a time-correlated reader.
func (q *QueryBatch) SequentialFrom(size int) []int64 {
	out := make([]int64, size)
	for i := range out {
		out[i] = q.seq % q.n
		q.seq++
	}
	return out
}

// Random returns size uniform random keys.
func (q *QueryBatch) Random(size int) []int64 {
	out := make([]int64, size)
	for i := range out {
		out[i] = q.rng.Int63n(q.n)
	}
	return out
}

// UpdateSkew generates per-cycle key sets with the IoT update pattern of
// §8.4: each groom cycle's ingest updates p% of the previous cycle's
// data, 0.1·p% of the last 50 cycles' data and 0.01·p% of the last 100
// cycles' data; the rest are new keys. Recent data is thus updated far
// more often than old data.
type UpdateSkew struct {
	P        float64 // update percentage p (0..100)
	PerCycle int
	rng      *rand.Rand
	history  [][]int64 // keys ingested per past cycle, newest last
	// nextKey is atomic: concurrent readers poll Domain while the
	// ingest loop generates cycles.
	nextKey atomic.Int64
}

// NewUpdateSkew returns a generator emitting PerCycle keys per cycle.
func NewUpdateSkew(p float64, perCycle int, seed int64) *UpdateSkew {
	return &UpdateSkew{P: p, PerCycle: perCycle, rng: rand.New(rand.NewSource(seed))}
}

// Cycle returns the key set of the next groom cycle.
func (u *UpdateSkew) Cycle() []int64 {
	n := u.PerCycle
	frac := u.P / 100

	want1 := int(frac * float64(n))
	want50 := int(0.1 * frac * float64(min(len(u.history), 50)*n))
	want100 := int(0.01 * frac * float64(min(len(u.history), 100)*n))
	// The paper's p=100% case means "all ingested records are updates
	// after the first groom cycle": cap the combined update count at n,
	// preferring the most recent tiers.
	if want1 > n {
		want1 = n
	}
	if want1+want50 > n {
		want50 = n - want1
	}
	if want1+want50+want100 > n {
		want100 = n - want1 - want50
	}

	out := make([]int64, 0, n)
	pick := func(cyclesBack, count int) {
		if len(u.history) == 0 || count <= 0 {
			return
		}
		lo := len(u.history) - cyclesBack
		if lo < 0 {
			lo = 0
		}
		span := u.history[lo:]
		for i := 0; i < count; i++ {
			c := span[u.rng.Intn(len(span))]
			out = append(out, c[u.rng.Intn(len(c))])
		}
	}
	pick(1, want1)
	pick(50, want50)
	pick(100, want100)
	for len(out) < n {
		out = append(out, u.nextKey.Add(1)-1)
	}

	u.history = append(u.history, out)
	if len(u.history) > 100 {
		u.history = u.history[1:]
	}
	return out
}

// Domain returns the number of distinct keys generated so far. It is
// safe to call concurrently with Cycle.
func (u *UpdateSkew) Domain() int64 { return u.nextKey.Load() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
