package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
)

// Figure S4 (extension): the serving layer under concurrent clients.
// The paper evaluates Umzi inside one Wildfire process; this experiment
// puts the network front end in the loop — real TCP, the streaming wire
// protocol, the client connection pool — and sweeps the number of
// concurrent clients, each running an HTAP op loop (one small commit,
// one point query). It runs twice: against a plain server, and against
// one whose write admission control queues commits whenever the
// live-zone backpressure gauge crosses a threshold the workload is sure
// to hit, with a background groomer draining the pressure. The
// comparison shows what admission control costs in throughput and what
// it buys: the live zone stays bounded instead of growing with client
// count.

// FigS4Serving sweeps concurrent network clients against umzi-server,
// with and without write admission control.
func FigS4Serving(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S4",
		Title:    "Serving layer: throughput vs concurrent clients (extension)",
		XLabel:   "# clients",
		YLabel:   "normalized throughput (1 client, no admission = 1)",
		Baseline: "one client against the plain server",
	}
	clients := s.ServeClients
	if len(clients) == 0 {
		clients = []int{1, 4}
	}
	ops := s.ServeOpsPerClient
	if ops <= 0 {
		ops = 8
	}

	configs := []struct {
		name string
		adm  server.AdmissionConfig
	}{
		{"no admission", server.AdmissionConfig{}},
		// The threshold is low enough that every cell crosses it: each
		// op commits rows into the live zone faster than the groomer
		// drains it, so queued commits measure the control loop itself.
		{"admission (queue on live-zone pressure)", server.AdmissionConfig{
			MaxLiveRecords: 2_000,
			Queue:          true,
			QueueTimeout:   time.Minute,
			SampleEvery:    2 * time.Millisecond,
		}},
	}

	var base float64 // ops/s of the first cell
	for _, cfg := range configs {
		series := Series{Name: cfg.name}
		var tailP50, tailP99 time.Duration
		for _, nClients := range clients {
			qps, p50, p99, err := serveCell(cfg.adm, nClients, ops)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = qps
			}
			series.Y = append(series.Y, qps/base)
			tailP50, tailP99 = p50, p99
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s at %d clients: p50 %.2fms, p99 %.2fms per op (commit+query)",
			cfg.name, clients[len(clients)-1],
			float64(tailP50.Microseconds())/1000, float64(tailP99.Microseconds())/1000))
		res.Series = append(res.Series, series)
	}
	for _, c := range clients {
		res.X = append(res.X, fmt.Sprintf("%d", c))
	}
	return res, nil
}

// serveCell runs one figure cell: a fresh DB and server, nClients
// concurrent clients each performing ops operations (a 4-row commit
// plus a point query), returning aggregate throughput and op latency
// percentiles.
func serveCell(adm server.AdmissionConfig, nClients, ops int) (qps float64, p50, p99 time.Duration, err error) {
	ctx := context.Background()
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store: umzi.NewMemStore(umzi.LatencyModel{}),
		// The groomer is the drain admission control waits on; it must
		// run fast enough that queued writes make progress.
		GroomEvery: 10 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer db.Close()
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "serve",
		Columns: []umzi.TableColumn{
			{Name: "k", Kind: umzi.KindInt64},
			{Name: "v", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, umzi.TableOptions{Shards: 4})
	if err != nil {
		return 0, 0, 0, err
	}
	// Seed and groom so point queries have groomed blocks to hit.
	seed := make([]umzi.Row, 0, 1024)
	for i := int64(0); i < 1024; i++ {
		seed = append(seed, umzi.Row{umzi.I64(i), umzi.I64(i)})
	}
	if err := tbl.Upsert(ctx, seed...); err != nil {
		return 0, 0, 0, err
	}
	if err := tbl.Groom(); err != nil {
		return 0, 0, 0, err
	}

	srv, err := server.New(server.Config{DB: db, MaxConns: nClients + 8, Admission: adm})
	if err != nil {
		return 0, 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if serr := srv.Shutdown(sctx); serr != nil && err == nil {
			err = serr
		}
	}()

	lats := make([][]time.Duration, nClients)
	errs := make(chan error, nClients)
	start := time.Now()
	for c := 0; c < nClients; c++ {
		go func(c int) {
			cdb, err := client.Open(client.Config{Addr: ln.Addr().String(), MaxConns: 2})
			if err != nil {
				errs <- err
				return
			}
			defer cdb.Close()
			t := cdb.Table("serve")
			lats[c] = make([]time.Duration, 0, ops)
			for i := 0; i < ops; i++ {
				opStart := time.Now()
				base := int64(1024 + c*ops*4 + i*4)
				rows := make([]umzi.Row, 4)
				for j := range rows {
					k := base + int64(j)
					rows[j] = umzi.Row{umzi.I64(k), umzi.I64(k)}
				}
				if err := t.Upsert(ctx, rows...); err != nil {
					errs <- fmt.Errorf("client %d commit: %w", c, err)
					return
				}
				k := int64((c*ops + i) % 1024)
				_, found, err := t.Query().Where(umzi.Eq("k", umzi.I64(k))).One(ctx)
				if err != nil || !found {
					errs <- fmt.Errorf("client %d point query k=%d: found=%v err=%v", c, k, found, err)
					return
				}
				lats[c] = append(lats[c], time.Since(opStart))
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < nClients; c++ {
		if werr := <-errs; werr != nil {
			return 0, 0, 0, werr
		}
	}
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pctl := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return float64(len(all)) / elapsed.Seconds(), pctl(0.50), pctl(0.99), nil
}
