package bench

import (
	"fmt"
	"math/rand"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Figure S1 (extension): scatter-gather shard scaling. The paper
// evaluates one Umzi instance, but positions it inside sharded Wildfire
// where every table shard runs its own index and queries fan out across
// shards (§2.1, §3). This experiment fixes the dataset and sweeps the
// shard count: an ordered full scan (scatter to every shard, sort-merge)
// and a random lookup batch (split across shards) run against shared
// storage with a simulated per-read latency, so the win measured is the
// one sharding actually buys — per-shard reads overlap instead of
// queueing behind one index instance.

// shardLedgerTable is the experiment's table: a single-column primary
// key that is both the sharding key and the index sort key, with no
// equality columns — so every scan is a global ordered scan that cannot
// pin to one shard.
func shardLedgerTable(name string) (wildfire.TableDef, wildfire.IndexSpec) {
	table := wildfire.TableDef{
		Name: name,
		Columns: []columnar.Column{
			{Name: "id", Kind: keyenc.KindInt64},
			{Name: "payload", Kind: keyenc.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}
	spec := wildfire.IndexSpec{
		// No equality columns: the hash column degenerates and the index
		// is a pure range index over id (§4.1), so HashBits stays 0.
		Sort:     []string{"id"},
		Included: []string{"payload"},
	}
	return table, spec
}

// NewShardedLedger builds a sharded ledger engine over latency-modeled
// shared storage and ingests rows in groomRounds lockstep rounds. The
// root scatter-gather benchmarks reuse it so the Go benchmark and the
// Figure S1 sweep measure the same workload.
func NewShardedLedger(name string, shards, rows int, lat storage.LatencyModel) (*wildfire.ShardedEngine, error) {
	table, spec := shardLedgerTable(name)
	cfg := wildfire.ShardedConfig{
		Table:  table,
		Index:  spec,
		Shards: shards,
		Store:  storage.NewMemStore(lat),
	}
	cfg.IndexTuning.BlockSize = 4096
	// These drivers measure the read paths; ingest setup opts out of
	// per-commit log syncs (Figure S3 measures the write path).
	cfg.Durability.SyncPolicy = wildfire.SyncOff
	eng, err := wildfire.NewShardedEngine(cfg)
	if err != nil {
		return nil, err
	}
	const groomRounds = 8
	per := rows / groomRounds
	id := int64(0)
	for r := 0; r < groomRounds; r++ {
		count := per
		if r == groomRounds-1 {
			count = rows - int(id)
		}
		for i := 0; i < count; i++ {
			if err := eng.UpsertRows(0, wildfire.Row{keyenc.I64(id), keyenc.I64(id * 3)}); err != nil {
				eng.Close()
				return nil, err
			}
			id++
		}
		if err := eng.Groom(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

// FigS1ShardScaling sweeps the shard count over a fixed dataset and
// reports normalized latency (1.0 = one shard) of the ordered
// scatter-gather scan and of the random lookup batch.
func FigS1ShardScaling(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S1",
		Title:    "Scatter-gather shard scaling (extension)",
		XLabel:   "# shards",
		YLabel:   "normalized latency",
		Baseline: "1 shard on the same data",
	}
	rows := s.ShardScanRows
	if rows <= 0 {
		rows = 16_000
	}
	if len(s.ShardCounts) == 0 {
		s.ShardCounts = []int{1, 2, 4, 8}
	}
	lat := storage.LatencyModel{PerOp: 100 * time.Microsecond}

	scan := Series{Name: "ordered scan"}
	batch := Series{Name: fmt.Sprintf("lookup batch (%d)", s.LookupBatch)}
	for _, n := range s.ShardCounts {
		res.X = append(res.X, fmt.Sprintf("%d", n))
		eng, err := NewShardedLedger(fmt.Sprintf("s1x%d", n), n, rows, lat)
		if err != nil {
			return nil, err
		}
		var scanErr error
		scanSec := timeAvg(s.Reps, func() {
			out, err := eng.IndexOnlyScan(nil, nil, nil, wildfire.QueryOptions{})
			if err != nil {
				scanErr = err
				return
			}
			if len(out) != rows {
				scanErr = fmt.Errorf("bench: scan returned %d rows, want %d", len(out), rows)
			}
		})
		rng := rand.New(rand.NewSource(7))
		batchSec := timeAvg(s.Reps, func() {
			keys := make([]core.LookupKey, s.LookupBatch)
			for i := range keys {
				keys[i] = core.LookupKey{Sort: []keyenc.Value{keyenc.I64(rng.Int63n(int64(rows)))}}
			}
			if _, _, err := eng.GetBatch(keys, wildfire.QueryOptions{}); err != nil {
				scanErr = err
			}
		})
		eng.Close()
		if scanErr != nil {
			return nil, scanErr
		}
		scan.Y = append(scan.Y, scanSec)
		batch.Y = append(batch.Y, batchSec)
		if n == 1 && scanSec > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("1-shard ordered scan: %.1f ms over %s rows",
				scanSec*1000, humanCount(rows)))
		}
	}
	base := scan.Y[0]
	if b := batch.Y[0]; b > 0 {
		ys := make([]float64, len(batch.Y))
		for i, y := range batch.Y {
			ys[i] = y / b
		}
		batch.Y = ys
	}
	res.Series = append(res.Series, normalize([]Series{scan}, base)...)
	res.Series = append(res.Series, batch)
	res.Notes = append(res.Notes,
		"expect latency to fall as shards grow: per-shard shared-storage reads overlap (I/O parallelism), and on multi-core machines the per-shard scans also run on separate CPUs",
		"the dataset is fixed across the sweep; only its partitioning changes")
	return res, nil
}
