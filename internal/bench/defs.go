package bench

import (
	"fmt"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// The three index definitions of §8.1, every column an 8-byte long:
//
//	I1: one equality column, one sort column, one include column
//	I2: two equality columns, one include column
//	I3: one equality column, one include column
type IndexVariant int

const (
	I1 IndexVariant = iota
	I2
	I3
)

// String implements fmt.Stringer.
func (v IndexVariant) String() string {
	return [...]string{"I1", "I2", "I3"}[v]
}

// Variants lists all three definitions.
func Variants() []IndexVariant { return []IndexVariant{I1, I2, I3} }

// Def returns the core index definition of the variant. groupBits sets
// how keys split into (equality, sort) parts — see splitKey.
func (v IndexVariant) Def() core.IndexDef {
	long := func(n string) core.Column { return core.Column{Name: n, Kind: keyenc.KindInt64} }
	switch v {
	case I1:
		return core.IndexDef{
			Equality: []core.Column{long("a")},
			Sort:     []core.Column{long("b")},
			Included: []core.Column{long("c")},
			HashBits: 10,
		}
	case I2:
		return core.IndexDef{
			Equality: []core.Column{long("a"), long("b")},
			Included: []core.Column{long("c")},
			HashBits: 10,
		}
	default:
		return core.IndexDef{
			Equality: []core.Column{long("a")},
			Included: []core.Column{long("c")},
			HashBits: 10,
		}
	}
}

// dataset maps scalar keys to index column values. A key k splits into a
// group part and an in-group part at groupBits: the group part feeds the
// (leading) equality column, the in-group part the sort column. I3 (no
// sort column) uses the whole key as the equality value.
type dataset struct {
	variant   IndexVariant
	groupBits uint
}

// eqVals returns the equality-column values of key k.
func (d dataset) eqVals(k int64) []keyenc.Value {
	switch d.variant {
	case I1:
		return []keyenc.Value{keyenc.I64(k >> d.groupBits)}
	case I2:
		// Both columns carry the key: I2's keys are longer than I1's and
		// its hash input doubles, the mechanical costs of a second
		// equality column.
		return []keyenc.Value{keyenc.I64(k), keyenc.I64(k)}
	default:
		return []keyenc.Value{keyenc.I64(k)}
	}
}

// sortVals returns the sort-column values of key k.
func (d dataset) sortVals(k int64) []keyenc.Value {
	if d.variant == I1 {
		return []keyenc.Value{keyenc.I64(k & (1<<d.groupBits - 1))}
	}
	return nil
}

// entry builds the index entry of key k.
func (d dataset) entry(ix *core.Index, k int64, ts types.TS, rid types.RID) (run.Entry, error) {
	return ix.MakeEntry(d.eqVals(k), d.sortVals(k), []keyenc.Value{keyenc.I64(k)}, ts, rid)
}

// lookupKey builds the batched-lookup key of k.
func (d dataset) lookupKey(k int64) core.LookupKey {
	return core.LookupKey{Equality: d.eqVals(k), Sort: d.sortVals(k)}
}

// newIndex builds a fresh in-memory index for the variant.
func newIndex(name string, v IndexVariant, mutate func(*core.Config)) (*core.Index, error) {
	cfg := core.Config{
		Name:  name,
		Def:   v.Def(),
		Store: storage.NewMemStore(storage.LatencyModel{}),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg)
}

// buildRuns ingests keys into the index as nRuns equal groom cycles.
// Entry i carries beginTS MakeTS(cycle, i%cycleSize).
func buildRuns(ix *core.Index, d dataset, keys KeyGen, nRuns int) error {
	n := keys.N()
	per := n / nRuns
	if per == 0 {
		return fmt.Errorf("bench: %d keys cannot fill %d runs", n, nRuns)
	}
	idx := 0
	for r := 0; r < nRuns; r++ {
		count := per
		if r == nRuns-1 {
			count = n - idx // last run takes the remainder
		}
		cycle := uint64(r + 1)
		entries := make([]run.Entry, 0, count)
		for i := 0; i < count; i++ {
			k := keys.Key(idx)
			e, err := d.entry(ix, k, types.MakeTS(cycle, uint32(i)), types.RID{Zone: types.ZoneGroomed, Block: cycle, Offset: uint32(i)})
			if err != nil {
				return err
			}
			entries = append(entries, e)
			idx++
		}
		if err := ix.BuildRun(entries, types.BlockRange{Min: cycle, Max: cycle}); err != nil {
			return err
		}
	}
	return nil
}

// lookupBatch runs one batched lookup and returns the number found.
func lookupBatch(ix *core.Index, d dataset, keys []int64) (int, error) {
	lk := make([]core.LookupKey, len(keys))
	for i, k := range keys {
		lk[i] = d.lookupKey(k)
	}
	_, found, err := ix.LookupBatch(lk, types.MaxTS)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range found {
		if f {
			n++
		}
	}
	return n, nil
}
