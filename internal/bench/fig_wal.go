package bench

import (
	"fmt"
	"sync"
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// Figure S3 (extension): the durable write path. Wildfire acknowledges
// a transaction only once it is in the shard's commit log (§2.1 — "the
// log is the database"); the cost of that promise is one durable
// segment write, and group commit is what makes it affordable: with a
// slow durability device, concurrent committers share one segment
// write instead of queueing one each. This experiment sweeps the sync
// policy (off / interval / per-commit, with and without an explicit
// group-commit window) against the number of concurrent writers and
// reports ingest throughput. The storage latency model plays the fsync
// role so the sweep is deterministic across machines.

// walCell describes one x-axis policy cell of Figure S3.
type walCell struct {
	label string
	opts  wildfire.DurabilityOptions
}

// WALDeviceLatency is the simulated durability-device cost of Figure
// S3: every segment write pays it once, which is exactly what group
// commit amortizes across concurrent committers.
func WALDeviceLatency() storage.LatencyModel {
	return storage.LatencyModel{PerOp: 2 * time.Millisecond}
}

func walCells() []walCell {
	return []walCell{
		{"off", wildfire.DurabilityOptions{SyncPolicy: wildfire.SyncOff}},
		{"interval 5ms", wildfire.DurabilityOptions{SyncPolicy: wildfire.SyncInterval, SyncInterval: 5 * time.Millisecond}},
		{"per-commit", wildfire.DurabilityOptions{SyncPolicy: wildfire.SyncPerCommit}},
		{"per-commit +1ms window", wildfire.DurabilityOptions{SyncPolicy: wildfire.SyncPerCommit, GroupCommitWindow: time.Millisecond}},
	}
}

// WALIngest runs writers concurrent committers of commits transactions
// (rowsPer rows each) against a fresh single-shard engine under the
// given durability options, returning rows ingested per second. The
// root BenchmarkGroupCommit reuses it so the Go benchmark and the
// Figure S3 sweep measure the same workload.
func WALIngest(name string, opts wildfire.DurabilityOptions, writers, commits, rowsPer int, lat storage.LatencyModel) (float64, error) {
	table := wildfire.TableDef{
		Name: name,
		Columns: []wildfire.TableColumn{
			{Name: "writer", Kind: keyenc.KindInt64},
			{Name: "seq", Kind: keyenc.KindInt64},
			{Name: "payload", Kind: keyenc.KindInt64},
		},
		PrimaryKey: []string{"writer", "seq"},
		ShardKey:   []string{"writer"},
	}
	cfg := wildfire.Config{
		Table:      table,
		Index:      wildfire.IndexSpec{Equality: []string{"writer"}, Sort: []string{"seq"}},
		Store:      storage.NewMemStore(lat),
		Durability: opts,
	}
	eng, err := wildfire.NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	defer eng.Close()

	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < commits; c++ {
				rows := make([]wildfire.Row, rowsPer)
				for i := range rows {
					rows[i] = wildfire.Row{
						keyenc.I64(int64(w)),
						keyenc.I64(int64(c*rowsPer + i)),
						keyenc.I64(int64(c)),
					}
				}
				if err := eng.UpsertRows(0, rows...); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := float64(writers * commits * rowsPer)
	return total / elapsed, nil
}

// FigS3GroupCommit sweeps sync policy x concurrent writers and reports
// ingest throughput normalized to the no-sync policy at each writer
// count (1.0 = whatever that writer count achieves with durability
// off). The acceptance claim of the experiment: with >= 8 writers,
// per-commit durability under group commit lands within a small factor
// of the no-sync ceiling — instead of the ~1/batch-size cliff naive
// per-commit syncing would take — because every segment write is
// amortized over the whole group.
func FigS3GroupCommit(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure S3",
		Title:    "Ingest throughput vs sync policy and group commit (extension)",
		XLabel:   "sync policy",
		YLabel:   "throughput normalized to SyncOff at the same writer count",
		Baseline: "SyncOff (no durability) at each writer count",
	}
	writers := s.WALWriters
	if len(writers) == 0 {
		writers = []int{1, 8}
	}
	commits := s.WALCommits
	if commits <= 0 {
		commits = 24
	}
	rowsPer := s.WALRowsPerCommit
	if rowsPer <= 0 {
		rowsPer = 4
	}
	// PerOp plays the fsync: every segment write costs this much, which
	// is what group commit amortizes. It is deliberately coarse (a
	// spinning-disk-class sync) so sleep granularity noise stays small
	// relative to the signal.
	lat := WALDeviceLatency()

	cells := walCells()
	for _, c := range cells {
		res.X = append(res.X, c.label)
	}
	// The group-commit claim compares per-commit durability under
	// concurrency against the naive baseline: a single committer paying
	// the full device sync alone per transaction.
	var perCommit1, perCommitN, offN float64
	maxWriters := writers[len(writers)-1]
	for _, w := range writers {
		series := Series{Name: fmt.Sprintf("%d writers", w)}
		var off float64
		for ci, c := range cells {
			var sum float64
			for rep := 0; rep < s.Reps; rep++ {
				tput, err := WALIngest(fmt.Sprintf("s3w%dc%dr%d", w, ci, rep), c.opts, w, commits, rowsPer, lat)
				if err != nil {
					return nil, err
				}
				sum += tput
			}
			tput := sum / float64(s.Reps)
			if ci == 0 {
				off = tput
			}
			if c.opts.SyncPolicy == wildfire.SyncPerCommit {
				if w == 1 && (perCommit1 == 0 || tput < perCommit1) {
					perCommit1 = tput // naive baseline: the slower 1-writer per-commit cell
				}
				if w == maxWriters && tput > perCommitN {
					perCommitN = tput // best group-commit configuration
					offN = off
				}
			}
			if off > 0 {
				series.Y = append(series.Y, tput/off)
			} else {
				series.Y = append(series.Y, 0)
			}
		}
		res.Series = append(res.Series, series)
	}
	if perCommit1 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"group commit: per-commit durability at %d writers reaches %.1fx the single-writer per-commit rate (%.0f vs %.0f rows/s; acceptance: >=5x with >=8 writers) and %.0f%% of the no-sync ceiling",
			maxWriters, perCommitN/perCommit1, perCommitN, perCommit1, 100*perCommitN/offN))
	}
	res.Notes = append(res.Notes,
		"per-commit columns would sit near 1/(rows per segment write) without group commit: every committer would pay the full device latency alone",
		"interval sync tracks SyncOff: durability is deferred to the background flusher (bounded loss window)")
	return res, nil
}
