package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wildfire"
)

// End-to-end experiments (§8.4): data is ingested and index lookups run
// concurrently while grooming, post-grooming and index maintenance happen
// in the background. Records follow the IoT update-rate model (recent
// data updated more often); readers submit batches of 1000 random
// lookups continuously; each experiment reports the average lookup time
// per groom cycle, normalized as in the paper.

// e2eParams configures one end-to-end run.
type e2eParams struct {
	scale       Scale
	updateRate  float64 // p%
	readers     int
	postGroom   bool // run the post-groomer (Fig 15 disables it)
	cachedLevel int  // -2: leave auto; otherwise SetCachedLevel target
	storeLat    storage.LatencyModel
	cacheBytes  int64 // 0 = unbounded cache
}

// e2eStats is the outcome of one end-to-end run: average lookup latency
// per measured groom cycle, plus total lookup-batch throughput over the
// measured window.
type e2eStats struct {
	perCycle     []float64
	batchesTotal int
	elapsedSec   float64
}

// e2eRun executes one configuration: Warmup unmeasured cycles (so the
// baseline reflects steady state rather than an empty index) followed by
// Cycles measured ones.
func e2eRun(name string, p e2eParams) (*e2eStats, error) {
	table := wildfire.TableDef{
		Name: name,
		Columns: []columnar.Column{
			{Name: "device", Kind: keyenc.KindInt64},
			{Name: "msg", Kind: keyenc.KindInt64},
			{Name: "payload", Kind: keyenc.KindInt64},
		},
		PrimaryKey:   []string{"device", "msg"},
		ShardKey:     []string{"device"},
		PartitionKey: "payload",
	}
	spec := wildfire.IndexSpec{
		Equality: []string{"device"},
		Sort:     []string{"msg"},
		Included: []string{"payload"},
		HashBits: 10,
	}
	var cache *storage.SSDCache
	if p.cacheBytes >= 0 {
		cache = storage.NewSSDCache(p.cacheBytes, storage.LatencyModel{})
	}
	cfg := wildfire.Config{
		Table:    table,
		Index:    spec,
		Store:    storage.NewMemStore(p.storeLat),
		Cache:    cache,
		Replicas: 2,
	}
	cfg.IndexTuning.K = 4
	cfg.IndexTuning.T = 4
	// End-to-end figures measure grooming and lookups, not commit
	// syncs; Figure S3 measures the write path.
	cfg.Durability.SyncPolicy = wildfire.SyncOff
	eng, err := wildfire.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	gen := NewUpdateSkew(p.updateRate, p.scale.RecordsPerCycle, 23)
	toRow := func(k int64) wildfire.Row {
		return wildfire.Row{keyenc.I64(k & 0xFF), keyenc.I64(k >> 8), keyenc.I64(k)}
	}

	var cycle atomic.Int64 // measured cycle index; negative during warmup
	cycle.Store(-int64(p.scale.Warmup))
	var stop atomic.Bool
	// Latency samples per cycle, per reader, merged after the run.
	type sample struct {
		cycle int
		sec   float64
	}
	sampleCh := make(chan sample, 4096)

	var wg sync.WaitGroup
	for r := 0; r < p.readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qb := NewQueryBatch(1, seed)
			for !stop.Load() {
				dom := gen.Domain()
				if dom == 0 {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				keys := make([]core.LookupKey, p.scale.LookupBatch)
				for i := range keys {
					k := qb.rng.Int63n(dom)
					keys[i] = core.LookupKey{
						Equality: []keyenc.Value{keyenc.I64(k & 0xFF)},
						Sort:     []keyenc.Value{keyenc.I64(k >> 8)},
					}
				}
				c := int(cycle.Load())
				start := time.Now()
				if _, _, err := eng.GetBatch(keys, wildfire.QueryOptions{}); err != nil {
					return
				}
				if c >= 0 {
					select {
					case sampleCh <- sample{cycle: c, sec: time.Since(start).Seconds()}:
					default:
					}
				}
			}
		}(int64(100 + r))
	}

	// Writer: one groom per cycle, post-groom every PostGroomEvery
	// cycles, one maintenance pass per cycle.
	perCycleSum := make([]float64, p.scale.Cycles)
	perCycleN := make([]int, p.scale.Cycles)
	collect := func() {
		for {
			select {
			case s := <-sampleCh:
				if s.cycle >= 0 && s.cycle < len(perCycleSum) {
					perCycleSum[s.cycle] += s.sec
					perCycleN[s.cycle]++
				}
			default:
				return
			}
		}
	}
	var measureStart time.Time
	for c := -p.scale.Warmup; c < p.scale.Cycles; c++ {
		if c == 0 {
			measureStart = time.Now()
		}
		cycle.Store(int64(c))
		keys := gen.Cycle()
		for i, k := range keys {
			if err := eng.UpsertRows(i%2, toRow(k)); err != nil {
				stop.Store(true)
				wg.Wait()
				return nil, err
			}
		}
		if err := eng.Groom(); err != nil {
			stop.Store(true)
			wg.Wait()
			return nil, err
		}
		if p.postGroom && (c+1)%p.scale.PostGroomEvery == 0 {
			if _, err := eng.PostGroom(); err != nil {
				stop.Store(true)
				wg.Wait()
				return nil, err
			}
			if err := eng.SyncIndex(); err != nil {
				stop.Store(true)
				wg.Wait()
				return nil, err
			}
		}
		if _, err := eng.Index().MaintainOnce(); err != nil {
			stop.Store(true)
			wg.Wait()
			return nil, err
		}
		if p.cachedLevel >= -1 {
			eng.Index().SetCachedLevel(p.cachedLevel)
		}
		// Give readers a slice of every cycle even on fast machines.
		time.Sleep(time.Millisecond)
		collect()
	}
	elapsed := time.Since(measureStart).Seconds()
	stop.Store(true)
	wg.Wait()
	close(sampleCh)
	for s := range sampleCh {
		if s.cycle >= 0 && s.cycle < len(perCycleSum) {
			perCycleSum[s.cycle] += s.sec
			perCycleN[s.cycle]++
		}
	}

	st := &e2eStats{perCycle: make([]float64, p.scale.Cycles), elapsedSec: elapsed}
	var last float64
	for c := range st.perCycle {
		if perCycleN[c] > 0 {
			last = perCycleSum[c] / float64(perCycleN[c])
		}
		st.perCycle[c] = last // carry forward cycles without samples
		st.batchesTotal += perCycleN[c]
	}
	return st, nil
}

func cycleLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// firstNonZero returns the first positive value of a series.
func firstNonZero(ys []float64) float64 {
	for _, y := range ys {
		if y > 0 {
			return y
		}
	}
	return 1
}

// Fig12ConcurrentReaders reproduces Figure 12: average lookup time over
// the experiment for a growing number of concurrent readers, normalized
// to the 1-reader start. Expected: more readers barely move the curve —
// the lock-free read path at work.
func Fig12ConcurrentReaders(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 12",
		Title:    "Performance with concurrent readers",
		XLabel:   "groom cycle",
		YLabel:   "normalized time for lookup",
		X:        cycleLabels(s.Cycles),
		Baseline: "1 reader at experiment start",
	}
	var base float64
	for _, readers := range s.ReaderCounts {
		st, err := e2eRun(fmt.Sprintf("f12r%d", readers), e2eParams{
			scale: s, updateRate: 10, readers: readers, postGroom: true, cachedLevel: -2,
		})
		if err != nil {
			return nil, err
		}
		ys := st.perCycle
		if base == 0 {
			base = firstNonZero(ys)
		}
		for i := range ys {
			ys[i] /= base
		}
		res.Series = append(res.Series, Series{Name: fmt.Sprintf("%d readers", readers), Y: ys})
		if st.elapsedSec > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("%d readers: %.0f lookup batches/s aggregate",
				readers, float64(st.batchesTotal)/st.elapsedSec))
		}
	}
	res.Notes = append(res.Notes,
		"expect reader count to have small impact (lock-free reads, §5.1)",
		fmt.Sprintf("NOTE: on a machine with %d core(s), per-batch latency grows with CPU oversubscription; the lock-free claim shows in aggregate throughput staying flat", runtime.NumCPU()))
	return res, nil
}

// Fig13UpdateRates reproduces Figure 13: the update percentage p swept
// from read-only to all-updates. Expected: limited impact on lookup
// latency, with a slight upward drift as the run chain grows.
func Fig13UpdateRates(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 13",
		Title:    "Varying percentage of update workloads",
		XLabel:   "groom cycle",
		YLabel:   "normalized time for lookup",
		X:        cycleLabels(s.Cycles),
		Baseline: "p=0% at experiment start",
	}
	var base float64
	for _, p := range s.UpdateRates {
		st, err := e2eRun(fmt.Sprintf("f13p%d", p), e2eParams{
			scale: s, updateRate: float64(p), readers: 4, postGroom: true, cachedLevel: -2,
		})
		if err != nil {
			return nil, err
		}
		ys := st.perCycle
		if base == 0 {
			base = firstNonZero(ys)
		}
		for i := range ys {
			ys[i] /= base
		}
		res.Series = append(res.Series, Series{Name: fmt.Sprintf("%d%%", p), Y: ys})
	}
	res.Notes = append(res.Notes,
		"expect update rate to have limited impact; slight growth over time as the index grows")
	return res, nil
}

// Fig14PurgeLevels reproduces Figure 14: lookup latency with all, half or
// none of the runs purged from the SSD cache, against slow shared
// storage. Expected: none << half/all; purged configurations show
// latency spikes when fresh runs are first fetched from shared storage.
func Fig14PurgeLevels(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 14",
		Title:    "Performance with various purge levels",
		XLabel:   "groom cycle",
		YLabel:   "normalized time for lookup",
		X:        cycleLabels(s.Cycles),
		Baseline: "no purging at experiment start",
	}
	lat := storage.LatencyModel{PerOp: 300 * time.Microsecond}
	// Purging is realized the way §7 describes: query-fetched blocks of
	// purged runs are dropped on cache replacement. The cache capacity
	// per configuration bounds how much of the index can stay resident:
	// "none" fits everything, "half" roughly half, "all" almost nothing.
	dataBytes := int64(s.RecordsPerCycle) * int64(s.Warmup+s.Cycles+1) * 48
	maxLevel := 9 // default levels: 6 groomed + 4 post - 1
	configs := []struct {
		name  string
		level int
		cache int64
	}{
		{"none", -2, 0},                       // unbounded: everything cached
		{"half", maxLevel / 2, dataBytes / 2}, // upper levels purged
		{"all", -1, 64 << 10},                 // nothing stays resident
	}
	var base float64
	for _, c := range configs {
		st, err := e2eRun("f14"+c.name, e2eParams{
			scale: s, updateRate: 10, readers: 4, postGroom: true,
			cachedLevel: c.level, storeLat: lat, cacheBytes: c.cache,
		})
		if err != nil {
			return nil, err
		}
		ys := st.perCycle
		if base == 0 {
			base = firstNonZero(ys)
		}
		for i := range ys {
			ys[i] /= base
		}
		res.Series = append(res.Series, Series{Name: c.name, Y: ys})
	}
	res.Notes = append(res.Notes,
		"expect none << half/all; purged runs re-fetched block-by-block cause latency spikes")
	return res, nil
}

// Fig15Evolve reproduces Figure 15: the impact of index evolve operations
// by enabling/disabling the post-groomer. Expected: evolve adds visible
// but bounded overhead (cache misses right after migration) while keeping
// the total run count lower.
func Fig15Evolve(s Scale) (*Result, error) {
	res := &Result{
		Figure:   "Figure 15",
		Title:    "Impact of index evolve operations",
		XLabel:   "groom cycle",
		YLabel:   "normalized time for lookup",
		X:        cycleLabels(s.Cycles),
		Baseline: "post-groom enabled at experiment start",
	}
	lat := storage.LatencyModel{PerOp: 100 * time.Microsecond}
	var base float64
	for _, pg := range []bool{true, false} {
		name := "post-groom"
		if !pg {
			name = "no post-groom"
		}
		st, err := e2eRun(fmt.Sprintf("f15%v", pg), e2eParams{
			scale: s, updateRate: 10, readers: 4, postGroom: pg,
			cachedLevel: -2, storeLat: lat,
		})
		if err != nil {
			return nil, err
		}
		ys := st.perCycle
		if base == 0 {
			base = firstNonZero(ys)
		}
		for i := range ys {
			ys[i] /= base
		}
		res.Series = append(res.Series, Series{Name: name, Y: ys})
	}
	res.Notes = append(res.Notes,
		"expect bounded evolve overhead: cache misses after migration, offset by fewer runs")
	return res, nil
}
