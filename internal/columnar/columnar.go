// Package columnar implements the column-major data block format that
// stands in for Parquet in this reproduction.
//
// Wildfire persists live-zone segments, groomed blocks and post-groomed
// blocks in a columnar open format (§2.1). Umzi itself never interprets
// record payloads through the format's API — it only needs (a) columnar
// blocks addressable by (block ID, record offset) so RIDs resolve to
// records, (b) per-column min/max statistics, and (c) immutable whole-block
// writes compatible with append-only shared storage. This package provides
// exactly those properties with a compact self-describing encoding.
package columnar

import (
	"fmt"
	"math"

	"umzi/internal/keyenc"
)

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind keyenc.Kind
}

// Schema is an ordered set of uniquely named columns.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema, rejecting duplicate or empty names and
// invalid kinds.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("columnar: empty schema")
	}
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("columnar: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("columnar: duplicate column %q", c.Name)
		}
		switch c.Kind {
		case keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
			keyenc.KindBytes, keyenc.KindString, keyenc.KindBool:
		default:
			return nil, fmt.Errorf("columnar: column %q has invalid kind %v", c.Name, c.Kind)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column descriptor.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// column is the in-memory column-major representation: fixed kinds pack
// into nums, variable kinds into offsets+payload.
type column struct {
	nums    []uint64 // int64 bits / uint64 / float64 bits / bool 0|1
	offsets []uint32 // len rows+1, for bytes/string
	payload []byte
}

// Block is an immutable columnar data block.
type Block struct {
	schema *Schema
	rows   int
	cols   []column
	mins   []keyenc.Value // per column; invalid Value when rows == 0
	maxs   []keyenc.Value
}

// Builder accumulates rows and produces an immutable Block.
type Builder struct {
	schema *Schema
	rows   int
	cols   []column
	mins   []keyenc.Value
	maxs   []keyenc.Value
}

// NewBuilder returns a builder for the schema.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{
		schema: schema,
		cols:   make([]column, schema.NumCols()),
		mins:   make([]keyenc.Value, schema.NumCols()),
		maxs:   make([]keyenc.Value, schema.NumCols()),
	}
	for i := range b.cols {
		if !schema.Col(i).Kind.Fixed() {
			b.cols[i].offsets = []uint32{0}
		}
	}
	return b
}

// Append adds one row. The row must have exactly one value per column with
// matching kinds (Str/Raw are interchangeable for bytes/string columns).
func (b *Builder) Append(row []keyenc.Value) error {
	if len(row) != b.schema.NumCols() {
		return fmt.Errorf("columnar: row has %d values, schema has %d columns", len(row), b.schema.NumCols())
	}
	for i, v := range row {
		want := b.schema.Col(i).Kind
		got := v.Kind()
		compatible := got == want ||
			(want == keyenc.KindBytes && got == keyenc.KindString) ||
			(want == keyenc.KindString && got == keyenc.KindBytes)
		if !compatible {
			return fmt.Errorf("columnar: column %q: value kind %v, want %v", b.schema.Col(i).Name, got, want)
		}
	}
	for i, v := range row {
		col := &b.cols[i]
		switch b.schema.Col(i).Kind {
		case keyenc.KindInt64:
			col.nums = append(col.nums, uint64(v.Int()))
		case keyenc.KindUint64:
			col.nums = append(col.nums, v.Uint())
		case keyenc.KindFloat64:
			col.nums = append(col.nums, math.Float64bits(v.Float()))
		case keyenc.KindBool:
			if v.Bool() {
				col.nums = append(col.nums, 1)
			} else {
				col.nums = append(col.nums, 0)
			}
		case keyenc.KindBytes, keyenc.KindString:
			col.payload = append(col.payload, v.Bytes()...)
			col.offsets = append(col.offsets, uint32(len(col.payload)))
		}
		// Min/max must not alias caller-owned buffers: Raw retains its
		// slice, and callers commonly reuse row buffers across Appends.
		if b.rows == 0 || keyenc.Compare(v, b.mins[i]) < 0 {
			b.mins[i] = cloneValue(v)
		}
		if b.rows == 0 || keyenc.Compare(v, b.maxs[i]) > 0 {
			b.maxs[i] = cloneValue(v)
		}
	}
	b.rows++
	return nil
}

func cloneValue(v keyenc.Value) keyenc.Value {
	switch v.Kind() {
	case keyenc.KindBytes:
		return keyenc.Raw(append([]byte(nil), v.Bytes()...))
	case keyenc.KindString:
		return keyenc.Str(string(v.Bytes()))
	default:
		return v
	}
}

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.rows }

// Build freezes the builder into a Block. The builder must not be used
// afterwards.
func (b *Builder) Build() *Block {
	return &Block{schema: b.schema, rows: b.rows, cols: b.cols, mins: b.mins, maxs: b.maxs}
}

// Schema returns the block's schema.
func (blk *Block) Schema() *Schema { return blk.schema }

// NumRows returns the number of rows in the block.
func (blk *Block) NumRows() int { return blk.rows }

// Value returns the value at (row, col). It panics on out-of-range
// indices, mirroring slice semantics.
func (blk *Block) Value(row, col int) keyenc.Value {
	c := &blk.cols[col]
	switch blk.schema.Col(col).Kind {
	case keyenc.KindInt64:
		return keyenc.I64(int64(c.nums[row]))
	case keyenc.KindUint64:
		return keyenc.U64(c.nums[row])
	case keyenc.KindFloat64:
		return keyenc.F64(math.Float64frombits(c.nums[row]))
	case keyenc.KindBool:
		return keyenc.B(c.nums[row] != 0)
	case keyenc.KindBytes:
		return keyenc.Raw(c.payload[c.offsets[row]:c.offsets[row+1]])
	case keyenc.KindString:
		return keyenc.Str(string(c.payload[c.offsets[row]:c.offsets[row+1]]))
	default:
		panic("columnar: invalid column kind")
	}
}

// Row appends the values of one row to dst and returns it.
func (blk *Block) Row(row int, dst []keyenc.Value) []keyenc.Value {
	for c := 0; c < blk.schema.NumCols(); c++ {
		dst = append(dst, blk.Value(row, c))
	}
	return dst
}

// ColumnMin returns the minimum value of the column; ok is false for an
// empty block.
func (blk *Block) ColumnMin(col int) (keyenc.Value, bool) {
	if blk.rows == 0 {
		return keyenc.Value{}, false
	}
	return blk.mins[col], true
}

// ColumnMax returns the maximum value of the column; ok is false for an
// empty block.
func (blk *Block) ColumnMax(col int) (keyenc.Value, bool) {
	if blk.rows == 0 {
		return keyenc.Value{}, false
	}
	return blk.maxs[col], true
}
