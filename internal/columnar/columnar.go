// Package columnar implements the column-major data block format that
// stands in for Parquet in this reproduction.
//
// Wildfire persists live-zone segments, groomed blocks and post-groomed
// blocks in a columnar open format (§2.1). Umzi itself never interprets
// record payloads through the format's API — it only needs (a) columnar
// blocks addressable by (block ID, record offset) so RIDs resolve to
// records, (b) per-column min/max statistics, and (c) immutable whole-block
// writes compatible with append-only shared storage. This package provides
// exactly those properties with a compact self-describing encoding.
//
// Columns are stored under per-column encodings (see encoding.go) chosen
// automatically at Build() time, carry optional bloom filters (bloom.go),
// and support vectorized predicate evaluation through CmpSelect, which
// compares an entire column against a constant directly over the encoded
// representation and emits a selection bitmap.
package columnar

import (
	"bytes"
	"fmt"
	"math"

	"umzi/internal/keyenc"
)

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind keyenc.Kind
}

// Schema is an ordered set of uniquely named columns.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema, rejecting duplicate or empty names and
// invalid kinds.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("columnar: empty schema")
	}
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("columnar: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("columnar: duplicate column %q", c.Name)
		}
		switch c.Kind {
		case keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
			keyenc.KindBytes, keyenc.KindString, keyenc.KindBool:
		default:
			return nil, fmt.Errorf("columnar: column %q has invalid kind %v", c.Name, c.Kind)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column descriptor.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// column is the in-memory representation of one encoded column. Which
// field group is populated depends on enc:
//
//	EncPlain   fixed: nums; variable: offsets+payload
//	EncBitPack base+width+packed (fixed kinds only)
//	EncDict    dictOffsets+dictPayload (sorted distinct values) and
//	           width+packed (codes; variable kinds only)
//	EncRLE     runEnds plus runNums (fixed) or runOffsets+runPayload
type column struct {
	enc Encoding

	nums    []uint64 // int64 bits / uint64 / float64 bits / bool 0|1
	offsets []uint32 // len rows+1, for bytes/string
	payload []byte

	base   uint64 // bitpack: minimum sort key
	width  uint8  // bitpack: delta width; dict: code width
	packed []uint64

	dictOffsets []uint32 // len ndict+1
	dictPayload []byte

	runEnds    []uint32 // cumulative end row of each run; last == rows
	runNums    []uint64
	runOffsets []uint32 // len runs+1
	runPayload []byte

	bloom *bloom
}

// Block is an immutable columnar data block.
type Block struct {
	schema *Schema
	rows   int
	cols   []column
	mins   []keyenc.Value // per column; invalid Value when rows == 0
	maxs   []keyenc.Value
}

// Builder accumulates rows and produces an immutable Block. Rows are
// buffered plain; Build() rewrites each column to its best encoding.
type Builder struct {
	schema    *Schema
	rows      int
	cols      []column
	mins      []keyenc.Value
	maxs      []keyenc.Value
	arena     arena
	bloomCols []int
	forceEnc  *Encoding
}

// NewBuilder returns a builder for the schema.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{
		schema: schema,
		cols:   make([]column, schema.NumCols()),
		mins:   make([]keyenc.Value, schema.NumCols()),
		maxs:   make([]keyenc.Value, schema.NumCols()),
	}
	for i := range b.cols {
		if !schema.Col(i).Kind.Fixed() {
			b.cols[i].offsets = []uint32{0}
		}
	}
	return b
}

// AddBloom designates columns (by ordinal) to carry bloom filters in the
// built block. Must be called before Build.
func (b *Builder) AddBloom(ordinals ...int) {
	b.bloomCols = append(b.bloomCols, ordinals...)
}

// ForceEncoding overrides automatic encoding selection: every column the
// encoding applies to uses it, the rest stay plain. For tests and
// benchmarks.
func (b *Builder) ForceEncoding(enc Encoding) {
	b.forceEnc = &enc
}

// arena batches the small copies the builder makes of string/bytes
// min/max candidates. Chunks are allocated with spare capacity and
// appended to in place — a chunk is never reallocated, so slices handed
// out earlier stay valid.
type arena struct {
	cur []byte
}

const arenaChunk = 4096

func (a *arena) copy(b []byte) []byte {
	if len(a.cur)+len(b) > cap(a.cur) {
		n := arenaChunk
		for n < len(b) {
			n *= 2
		}
		a.cur = make([]byte, 0, n)
	}
	start := len(a.cur)
	a.cur = append(a.cur, b...)
	return a.cur[start : start+len(b) : start+len(b)]
}

// Append adds one row. The row must have exactly one value per column with
// matching kinds (Str/Raw are interchangeable for bytes/string columns).
func (b *Builder) Append(row []keyenc.Value) error {
	if len(row) != b.schema.NumCols() {
		return fmt.Errorf("columnar: row has %d values, schema has %d columns", len(row), b.schema.NumCols())
	}
	for i, v := range row {
		want := b.schema.Col(i).Kind
		got := v.Kind()
		compatible := got == want ||
			(want == keyenc.KindBytes && got == keyenc.KindString) ||
			(want == keyenc.KindString && got == keyenc.KindBytes)
		if !compatible {
			return fmt.Errorf("columnar: column %q: value kind %v, want %v", b.schema.Col(i).Name, got, want)
		}
	}
	for i, v := range row {
		col := &b.cols[i]
		switch b.schema.Col(i).Kind {
		case keyenc.KindInt64:
			col.nums = append(col.nums, uint64(v.Int()))
		case keyenc.KindUint64:
			col.nums = append(col.nums, v.Uint())
		case keyenc.KindFloat64:
			col.nums = append(col.nums, math.Float64bits(v.Float()))
		case keyenc.KindBool:
			if v.Bool() {
				col.nums = append(col.nums, 1)
			} else {
				col.nums = append(col.nums, 0)
			}
		case keyenc.KindBytes, keyenc.KindString:
			col.payload = append(col.payload, v.Bytes()...)
			col.offsets = append(col.offsets, uint32(len(col.payload)))
		}
		// Min/max must not alias caller-owned buffers: Raw retains its
		// slice, and callers commonly reuse row buffers across Appends.
		if b.rows == 0 || keyenc.Compare(v, b.mins[i]) < 0 {
			b.mins[i] = b.cloneValue(v)
		}
		if b.rows == 0 || keyenc.Compare(v, b.maxs[i]) > 0 {
			b.maxs[i] = b.cloneValue(v)
		}
	}
	b.rows++
	return nil
}

func (b *Builder) cloneValue(v keyenc.Value) keyenc.Value {
	switch v.Kind() {
	case keyenc.KindBytes:
		return keyenc.Raw(b.arena.copy(v.Bytes()))
	case keyenc.KindString:
		return keyenc.StrBytes(b.arena.copy(v.Bytes()))
	default:
		return v
	}
}

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.rows }

// Build freezes the builder into a Block: blooms are built for the
// designated columns, then each column is rewritten to the encoding with
// the smallest estimated wire size. The builder must not be used
// afterwards.
func (b *Builder) Build() *Block {
	for _, ord := range b.bloomCols {
		if ord < 0 || ord >= len(b.cols) || b.rows == 0 {
			continue
		}
		c := &b.cols[ord]
		if c.bloom != nil {
			continue
		}
		f := newBloom(b.rows)
		if b.schema.Col(ord).Kind.Fixed() {
			kind := b.schema.Col(ord).Kind
			for _, raw := range c.nums {
				f.add(bloomHashKey(keyenc.SortKeyBits(kind, raw)))
			}
		} else {
			for r := 0; r < b.rows; r++ {
				f.add(bloomHashBytes(c.payload[c.offsets[r]:c.offsets[r+1]]))
			}
		}
		c.bloom = f
	}
	for i := range b.cols {
		chooseEncoding(&b.cols[i], b.schema.Col(i).Kind, b.rows, b.forceEnc)
	}
	return &Block{schema: b.schema, rows: b.rows, cols: b.cols, mins: b.mins, maxs: b.maxs}
}

// Schema returns the block's schema.
func (blk *Block) Schema() *Schema { return blk.schema }

// NumRows returns the number of rows in the block.
func (blk *Block) NumRows() int { return blk.rows }

// ColumnEncoding returns the physical encoding of the column.
func (blk *Block) ColumnEncoding(col int) Encoding { return blk.cols[col].enc }

// HasBloom reports whether the column carries a bloom filter.
func (blk *Block) HasBloom(col int) bool { return blk.cols[col].bloom != nil }

// BloomMightContain reports whether the column's bloom filter admits v.
// It returns true when the column has no filter (no exclusion possible).
func (blk *Block) BloomMightContain(col int, v keyenc.Value) bool {
	f := blk.cols[col].bloom
	if f == nil {
		return true
	}
	return f.mightContain(bloomHashValue(blk.schema.Col(col).Kind, v))
}

// rawBits returns the 64-bit raw representation of a fixed-kind value,
// as stored in a plain column's nums.
func rawBits(v keyenc.Value) uint64 {
	switch v.Kind() {
	case keyenc.KindInt64:
		return uint64(v.Int())
	case keyenc.KindUint64:
		return v.Uint()
	case keyenc.KindFloat64:
		return math.Float64bits(v.Float())
	case keyenc.KindBool:
		if v.Bool() {
			return 1
		}
		return 0
	default:
		panic("columnar: rawBits of variable-kind value")
	}
}

// numAt returns the raw 64-bit word of a fixed column at row, whatever
// the encoding.
func (blk *Block) numAt(col, row int) uint64 {
	c := &blk.cols[col]
	switch c.enc {
	case EncPlain:
		return c.nums[row]
	case EncBitPack:
		kind := blk.schema.Col(col).Kind
		return keyenc.SortKeyBitsInv(kind, c.base+packGet(c.packed, c.width, row))
	case EncRLE:
		return c.runNums[runIndex(c.runEnds, row)]
	default:
		panic("columnar: numAt on variable-kind encoding")
	}
}

// varAt returns the payload bytes of a variable column at row, whatever
// the encoding. The slice aliases block-owned memory.
func (blk *Block) varAt(col, row int) []byte {
	c := &blk.cols[col]
	switch c.enc {
	case EncPlain:
		return c.payload[c.offsets[row]:c.offsets[row+1]]
	case EncDict:
		code := packGet(c.packed, c.width, row)
		return c.dictPayload[c.dictOffsets[code]:c.dictOffsets[code+1]]
	case EncRLE:
		run := runIndex(c.runEnds, row)
		return c.runPayload[c.runOffsets[run]:c.runOffsets[run+1]]
	default:
		panic("columnar: varAt on fixed-kind encoding")
	}
}

// Value returns the value at (row, col). It panics on out-of-range
// indices, mirroring slice semantics. Values of variable kinds alias
// block-owned memory; the block is immutable, so the slices are stable.
func (blk *Block) Value(row, col int) keyenc.Value {
	if row < 0 || row >= blk.rows {
		panic(fmt.Sprintf("columnar: row %d out of range [0,%d)", row, blk.rows))
	}
	switch blk.schema.Col(col).Kind {
	case keyenc.KindInt64:
		return keyenc.I64(int64(blk.numAt(col, row)))
	case keyenc.KindUint64:
		return keyenc.U64(blk.numAt(col, row))
	case keyenc.KindFloat64:
		return keyenc.F64(math.Float64frombits(blk.numAt(col, row)))
	case keyenc.KindBool:
		return keyenc.B(blk.numAt(col, row) != 0)
	case keyenc.KindBytes:
		return keyenc.Raw(blk.varAt(col, row))
	case keyenc.KindString:
		return keyenc.StrBytes(blk.varAt(col, row))
	default:
		panic("columnar: invalid column kind")
	}
}

// Row appends the values of one row to dst and returns it.
func (blk *Block) Row(row int, dst []keyenc.Value) []keyenc.Value {
	for c := 0; c < blk.schema.NumCols(); c++ {
		dst = append(dst, blk.Value(row, c))
	}
	return dst
}

// AppendNums appends the raw 64-bit words of a fixed column (int64 bits,
// uint64, float64 bits, bool 0/1) for every row to dst and returns it —
// the bulk decode used by scan loops that touch one narrow column, such
// as the executor's beginTS visibility pass.
func (blk *Block) AppendNums(col int, dst []uint64) []uint64 {
	c := &blk.cols[col]
	switch c.enc {
	case EncPlain:
		return append(dst, c.nums...)
	case EncBitPack:
		kind := blk.schema.Col(col).Kind
		for r := 0; r < blk.rows; r++ {
			dst = append(dst, keyenc.SortKeyBitsInv(kind, c.base+packGet(c.packed, c.width, r)))
		}
		return dst
	case EncRLE:
		prev := 0
		for i, end := range c.runEnds {
			for ; prev < int(end); prev++ {
				dst = append(dst, c.runNums[i])
			}
		}
		return dst
	default:
		panic("columnar: AppendNums on variable-kind column")
	}
}

// ColumnMin returns the minimum value of the column; ok is false for an
// empty block.
func (blk *Block) ColumnMin(col int) (keyenc.Value, bool) {
	if blk.rows == 0 {
		return keyenc.Value{}, false
	}
	return blk.mins[col], true
}

// ColumnMax returns the maximum value of the column; ok is false for an
// empty block.
func (blk *Block) ColumnMax(col int) (keyenc.Value, bool) {
	if blk.rows == 0 {
		return keyenc.Value{}, false
	}
	return blk.maxs[col], true
}

// CmpSelect compares every row of the column against v and writes the
// selection into out, one bit per row (word w bit b = row 64w+b), fully
// overwriting len(out) = ceil(rows/64) words; tail bits beyond the row
// count are left zero. A row is selected when its three-way comparison
// against v lands on an enabled flag: lt selects rows < v, eq rows == v,
// gt rows > v (so e.g. lt && eq is "<="). The comparison runs directly
// over the encoded column — sort-key words for fixed kinds, dictionary
// codes for dict columns, one comparison per run for RLE — which is what
// makes the vectorized filter path cheap.
func (blk *Block) CmpSelect(col int, v keyenc.Value, lt, eq, gt bool, out []uint64) {
	for i := range out {
		out[i] = 0
	}
	if blk.rows == 0 {
		return
	}
	c := &blk.cols[col]
	kind := blk.schema.Col(col).Kind
	if kind.Fixed() {
		tv := keyenc.SortKeyBits(kind, rawBits(v))
		switch c.enc {
		case EncPlain:
			var w uint64
			for r, raw := range c.nums {
				k := keyenc.SortKeyBits(kind, raw)
				if (lt && k < tv) || (eq && k == tv) || (gt && k > tv) {
					w |= 1 << uint(r&63)
				}
				if r&63 == 63 {
					out[r>>6] = w
					w = 0
				}
			}
			if blk.rows&63 != 0 {
				out[(blk.rows-1)>>6] = w
			}
		case EncBitPack:
			blk.cmpSelectBitPack(c, tv, lt, eq, gt, out)
		case EncRLE:
			setRuns(c.runEnds, out, func(i int) bool {
				k := keyenc.SortKeyBits(kind, c.runNums[i])
				return (lt && k < tv) || (eq && k == tv) || (gt && k > tv)
			})
		}
		return
	}
	tb := v.Bytes()
	switch c.enc {
	case EncPlain:
		var w uint64
		for r := 0; r < blk.rows; r++ {
			cmp := bytes.Compare(c.payload[c.offsets[r]:c.offsets[r+1]], tb)
			if (lt && cmp < 0) || (eq && cmp == 0) || (gt && cmp > 0) {
				w |= 1 << uint(r&63)
			}
			if r&63 == 63 {
				out[r>>6] = w
				w = 0
			}
		}
		if blk.rows&63 != 0 {
			out[(blk.rows-1)>>6] = w
		}
	case EncDict:
		blk.cmpSelectDict(c, tb, lt, eq, gt, out)
	case EncRLE:
		setRuns(c.runEnds, out, func(i int) bool {
			cmp := bytes.Compare(c.runPayload[c.runOffsets[i]:c.runOffsets[i+1]], tb)
			return (lt && cmp < 0) || (eq && cmp == 0) || (gt && cmp > 0)
		})
	}
}

// cmpSelectBitPack compares bit-packed deltas against the target sort
// key tv without reconstructing values: rows match on their delta's
// position relative to d = tv - base, and targets outside the delta
// domain collapse to a constant fill.
func (blk *Block) cmpSelectBitPack(c *column, tv uint64, lt, eq, gt bool, out []uint64) {
	if tv < c.base {
		// Every row's key >= base > tv.
		if gt {
			fillBits(out, blk.rows)
		}
		return
	}
	d := tv - c.base
	if c.width < 64 && d >= 1<<c.width {
		// Every row's delta < d, i.e. every key < tv.
		if lt {
			fillBits(out, blk.rows)
		}
		return
	}
	if c.width == 0 {
		// All rows equal base; tv >= base and d == 0 here.
		if eq {
			fillBits(out, blk.rows)
		}
		return
	}
	var w uint64
	for r := 0; r < blk.rows; r++ {
		dv := packGet(c.packed, c.width, r)
		if (lt && dv < d) || (eq && dv == d) || (gt && dv > d) {
			w |= 1 << uint(r&63)
		}
		if r&63 == 63 {
			out[r>>6] = w
			w = 0
		}
	}
	if blk.rows&63 != 0 {
		out[(blk.rows-1)>>6] = w
	}
}

// cmpSelectDict resolves the target value to a dictionary position once,
// then compares bit-packed codes against that position — one value
// comparison per distinct value instead of per row.
func (blk *Block) cmpSelectDict(c *column, tb []byte, lt, eq, gt bool, out []uint64) {
	ndict := len(c.dictOffsets) - 1
	lo, hi := 0, ndict
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(c.dictPayload[c.dictOffsets[mid]:c.dictOffsets[mid+1]], tb) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ci := uint64(lo)
	found := lo < ndict && bytes.Equal(c.dictPayload[c.dictOffsets[lo]:c.dictOffsets[lo+1]], tb)
	// Codes below ci are < target; codes >= ci are > target, except code
	// ci itself when the target is present in the dictionary.
	var w uint64
	for r := 0; r < blk.rows; r++ {
		code := packGet(c.packed, c.width, r)
		var match bool
		switch {
		case code < ci:
			match = lt
		case found && code == ci:
			match = eq
		default:
			match = gt
		}
		if match {
			w |= 1 << uint(r&63)
		}
		if r&63 == 63 {
			out[r>>6] = w
			w = 0
		}
	}
	if blk.rows&63 != 0 {
		out[(blk.rows-1)>>6] = w
	}
}

// setRuns sets the bit ranges of the runs for which match(run) is true.
func setRuns(runEnds []uint32, out []uint64, match func(i int) bool) {
	start := 0
	for i, end := range runEnds {
		if match(i) {
			setRange(out, start, int(end))
		}
		start = int(end)
	}
}

// setRange sets bits [from, to) of out.
func setRange(out []uint64, from, to int) {
	for b := from; b < to; {
		w := b >> 6
		lo := uint(b & 63)
		n := 64 - int(lo)
		if b+n > to {
			n = to - b
		}
		var mask uint64
		if n == 64 {
			mask = ^uint64(0)
		} else {
			mask = (1<<uint(n) - 1) << lo
		}
		out[w] |= mask
		b += n
	}
}

// fillBits sets the first n bits of out.
func fillBits(out []uint64, n int) {
	for i := 0; i < n/64; i++ {
		out[i] = ^uint64(0)
	}
	if n&63 != 0 {
		out[n>>6] = 1<<uint(n&63) - 1
	}
}
