package columnar

import (
	"bytes"
	"math/bits"
	"sort"

	"umzi/internal/keyenc"
)

// Per-column encodings. A freshly built block picks, per column, the
// encoding with the smallest estimated wire size (plain wins ties), so
// blocks shrink automatically where the data allows it without any
// schema-level configuration:
//
//   - EncPlain: the v1 layout — raw 64-bit words for fixed kinds,
//     offsets+payload for variable kinds. Always applicable.
//   - EncDict: variable kinds only. The sorted distinct values are stored
//     once; rows store bit-packed indexes ("codes") into that dictionary.
//     Because the dictionary is sorted, code order equals value order, so
//     comparisons — not just equality — run directly on codes.
//   - EncBitPack: fixed kinds only. Frame-of-reference: each row stores
//     (sortKey - base) bit-packed at the minimal width, where sortKey is
//     the order-preserving uint64 image of the value (keyenc.SortKeyBits)
//     and base is the column minimum. Deltas are computed in sort-key
//     space, where subtraction cannot overflow for ordered keys.
//   - EncRLE: any kind. Runs of consecutive equal values collapse to
//     (cumulative end row, value) pairs; ideal for sorted or
//     near-constant columns such as beginTS and endTS.

// Encoding identifies the physical layout of one column within a block.
type Encoding uint8

// Supported column encodings.
const (
	EncPlain Encoding = iota
	EncDict
	EncBitPack
	EncRLE
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncDict:
		return "dict"
	case EncBitPack:
		return "bitpack"
	case EncRLE:
		return "rle"
	default:
		return "enc(?)"
	}
}

// --- bit packing -----------------------------------------------------------

// packedWords returns the number of uint64 words needed to hold n values
// of the given bit width.
func packedWords(n int, width uint8) int {
	return (n*int(width) + 63) / 64
}

// packPut stores v (which must fit in width bits) as the i-th value of a
// zero-initialized packed word array.
func packPut(words []uint64, width uint8, i int, v uint64) {
	if width == 0 {
		return
	}
	bit := i * int(width)
	w, off := bit>>6, uint(bit&63)
	words[w] |= v << off
	if off+uint(width) > 64 {
		words[w+1] |= v >> (64 - off)
	}
}

// packGet loads the i-th width-bit value from words.
func packGet(words []uint64, width uint8, i int) uint64 {
	if width == 0 {
		return 0
	}
	bit := i * int(width)
	w, off := bit>>6, uint(bit&63)
	v := words[w] >> off
	if off+uint(width) > 64 {
		v |= words[w+1] << (64 - off)
	}
	if width == 64 {
		return v
	}
	return v & (1<<width - 1)
}

// --- encoders --------------------------------------------------------------

// encodeBitPack rewrites a plain fixed column as frame-of-reference
// bit-packed deltas in sort-key space.
func encodeBitPack(c *column, kind keyenc.Kind) {
	base, width := bitPackDims(c.nums, kind)
	packed := make([]uint64, packedWords(len(c.nums), width))
	for i, raw := range c.nums {
		packPut(packed, width, i, keyenc.SortKeyBits(kind, raw)-base)
	}
	c.enc = EncBitPack
	c.base = base
	c.width = width
	c.packed = packed
	c.nums = nil
}

// bitPackDims returns the frame-of-reference base (minimum sort key) and
// bit width for a plain fixed column's raw words.
func bitPackDims(nums []uint64, kind keyenc.Kind) (base uint64, width uint8) {
	if len(nums) == 0 {
		return 0, 0
	}
	min, max := keyenc.SortKeyBits(kind, nums[0]), keyenc.SortKeyBits(kind, nums[0])
	for _, raw := range nums[1:] {
		k := keyenc.SortKeyBits(kind, raw)
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	return min, uint8(bits.Len64(max - min))
}

// encodeDict rewrites a plain variable column as a sorted dictionary plus
// bit-packed codes.
func encodeDict(c *column) {
	rows := len(c.offsets) - 1
	dict := dictValues(c)
	var width uint8
	if len(dict) > 1 {
		width = uint8(bits.Len64(uint64(len(dict) - 1)))
	}
	codes := make([]uint64, packedWords(rows, width))
	for r := 0; r < rows; r++ {
		v := c.payload[c.offsets[r]:c.offsets[r+1]]
		ci := sort.Search(len(dict), func(i int) bool { return bytes.Compare(dict[i], v) >= 0 })
		packPut(codes, width, r, uint64(ci))
	}
	dictOffsets := make([]uint32, 1, len(dict)+1)
	var dictPayload []byte
	for _, d := range dict {
		dictPayload = append(dictPayload, d...)
		dictOffsets = append(dictOffsets, uint32(len(dictPayload)))
	}
	c.enc = EncDict
	c.width = width
	c.packed = codes
	c.dictOffsets = dictOffsets
	c.dictPayload = dictPayload
	c.offsets = nil
	c.payload = nil
}

// dictValues returns the sorted distinct values of a plain variable
// column.
func dictValues(c *column) [][]byte {
	rows := len(c.offsets) - 1
	vals := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		vals[r] = c.payload[c.offsets[r]:c.offsets[r+1]]
	}
	sort.Slice(vals, func(i, j int) bool { return bytes.Compare(vals[i], vals[j]) < 0 })
	out := vals[:0]
	for _, v := range vals {
		if len(out) == 0 || !bytes.Equal(out[len(out)-1], v) {
			out = append(out, v)
		}
	}
	return out
}

// dictSize estimates the wire size of a dict encoding for a plain
// variable column, and reports the distinct count.
func dictSize(c *column) (size, ndict int) {
	rows := len(c.offsets) - 1
	dict := dictValues(c)
	ndict = len(dict)
	var payload int
	for _, d := range dict {
		payload += len(d)
	}
	width := 0
	if ndict > 1 {
		width = bits.Len64(uint64(ndict - 1))
	}
	// ndict u32 + (ndict+1) offsets + payload + width u8 + nwords u32 + words
	return 4 + 4*(ndict+1) + payload + 1 + 4 + 8*packedWords(rows, uint8(width)), ndict
}

// encodeRLE rewrites a plain column (fixed or variable) as runs of equal
// values: cumulative run-end rows plus one stored value per run.
func encodeRLE(c *column, fixed bool) {
	var runEnds []uint32
	if fixed {
		var runNums []uint64
		for i, v := range c.nums {
			if i == 0 || v != c.nums[i-1] {
				runNums = append(runNums, v)
				runEnds = append(runEnds, uint32(i+1))
			} else {
				runEnds[len(runEnds)-1] = uint32(i + 1)
			}
		}
		c.runNums = runNums
		c.nums = nil
	} else {
		rows := len(c.offsets) - 1
		runOffsets := []uint32{0}
		var runPayload []byte
		for r := 0; r < rows; r++ {
			v := c.payload[c.offsets[r]:c.offsets[r+1]]
			if r > 0 && bytes.Equal(v, c.payload[c.offsets[r-1]:c.offsets[r]]) {
				runEnds[len(runEnds)-1] = uint32(r + 1)
				continue
			}
			runPayload = append(runPayload, v...)
			runOffsets = append(runOffsets, uint32(len(runPayload)))
			runEnds = append(runEnds, uint32(r+1))
		}
		c.runOffsets = runOffsets
		c.runPayload = runPayload
		c.offsets = nil
		c.payload = nil
	}
	c.enc = EncRLE
	c.runEnds = runEnds
}

// rleRuns counts the runs of consecutive equal values and, for variable
// kinds, the total payload bytes of one stored value per run.
func rleRuns(c *column, fixed bool) (runs, varPayload int) {
	if fixed {
		for i, v := range c.nums {
			if i == 0 || v != c.nums[i-1] {
				runs++
			}
		}
		return runs, 0
	}
	rows := len(c.offsets) - 1
	for r := 0; r < rows; r++ {
		if r == 0 || !bytes.Equal(c.payload[c.offsets[r]:c.offsets[r+1]], c.payload[c.offsets[r-1]:c.offsets[r]]) {
			runs++
			varPayload += int(c.offsets[r+1] - c.offsets[r])
		}
	}
	return runs, varPayload
}

// runIndex returns the run containing row: the smallest i with
// runEnds[i] > row.
func runIndex(runEnds []uint32, row int) int {
	lo, hi := 0, len(runEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(runEnds[mid]) > row {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// chooseEncoding picks the smallest-wire-size encoding for a freshly
// built plain column and rewrites it in place. forced, when non-nil,
// overrides the choice where the encoding applies to the kind (with a
// plain fallback otherwise).
func chooseEncoding(c *column, kind keyenc.Kind, rows int, forced *Encoding) {
	fixed := kind.Fixed()
	if forced != nil {
		switch *forced {
		case EncBitPack:
			if fixed {
				encodeBitPack(c, kind)
			}
		case EncDict:
			if !fixed {
				encodeDict(c)
			}
		case EncRLE:
			if rows > 0 {
				encodeRLE(c, fixed)
			}
		}
		return
	}
	if rows == 0 {
		return
	}
	// Estimated wire sizes of each candidate's column body (the shared
	// kind/name/min/max header is identical across encodings).
	best, bestEnc := plainBodySize(c, fixed), EncPlain
	runs, runPayload := rleRuns(c, fixed)
	var rleSize int
	if fixed {
		rleSize = 4 + 4*runs + 8*runs // nruns + ends + values
	} else {
		rleSize = 4 + 4*runs + 4*(runs+1) + runPayload
	}
	if rleSize < best {
		best, bestEnc = rleSize, EncRLE
	}
	if fixed {
		_, width := bitPackDims(c.nums, kind)
		// base u64 + width u8 + nwords u32 + words
		if s := 8 + 1 + 4 + 8*packedWords(rows, width); s < best {
			best, bestEnc = s, EncBitPack
		}
	} else {
		if s, _ := dictSize(c); s < best {
			best, bestEnc = s, EncDict
		}
	}
	switch bestEnc {
	case EncRLE:
		encodeRLE(c, fixed)
	case EncBitPack:
		encodeBitPack(c, kind)
	case EncDict:
		encodeDict(c)
	}
}

// plainBodySize is the wire size of a plain column body.
func plainBodySize(c *column, fixed bool) int {
	if fixed {
		return 8 * len(c.nums)
	}
	return 4*len(c.offsets) + len(c.payload)
}
