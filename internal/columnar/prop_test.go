package columnar

import (
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/keyenc"
)

// TestRandomBlocksRoundTrip builds blocks with random schemas and rows and
// verifies that (a) every value reads back equal, (b) per-column min/max
// match a naive computation, and (c) Marshal/Unmarshal is the identity on
// all observable state.
func TestRandomBlocksRoundTrip(t *testing.T) {
	kinds := []keyenc.Kind{
		keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
		keyenc.KindString, keyenc.KindBytes, keyenc.KindBool,
	}
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nCols := 1 + rng.Intn(6)
		cols := make([]Column, nCols)
		for i := range cols {
			cols[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: kinds[rng.Intn(len(kinds))]}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(schema)
		nRows := rng.Intn(200)
		rows := make([][]keyenc.Value, nRows)
		for r := range rows {
			row := make([]keyenc.Value, nCols)
			for c := range row {
				row[c] = randVal(rng, cols[c].Kind)
			}
			rows[r] = row
			if err := b.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		blk := b.Build()

		check := func(blk *Block, label string) {
			t.Helper()
			if blk.NumRows() != nRows {
				t.Fatalf("trial %d %s: rows = %d, want %d", trial, label, blk.NumRows(), nRows)
			}
			for r := range rows {
				for c := range rows[r] {
					if keyenc.Compare(blk.Value(r, c), rows[r][c]) != 0 {
						t.Fatalf("trial %d %s: (%d,%d) = %v, want %v", trial, label, r, c, blk.Value(r, c), rows[r][c])
					}
				}
			}
			for c := 0; c < nCols; c++ {
				min, okMin := blk.ColumnMin(c)
				max, okMax := blk.ColumnMax(c)
				if nRows == 0 {
					if okMin || okMax {
						t.Fatalf("trial %d %s: empty block has min/max", trial, label)
					}
					continue
				}
				wantMin, wantMax := rows[0][c], rows[0][c]
				for r := 1; r < nRows; r++ {
					if keyenc.Compare(rows[r][c], wantMin) < 0 {
						wantMin = rows[r][c]
					}
					if keyenc.Compare(rows[r][c], wantMax) > 0 {
						wantMax = rows[r][c]
					}
				}
				if !okMin || keyenc.Compare(min, wantMin) != 0 {
					t.Fatalf("trial %d %s: col %d min = %v, want %v", trial, label, c, min, wantMin)
				}
				if !okMax || keyenc.Compare(max, wantMax) != 0 {
					t.Fatalf("trial %d %s: col %d max = %v, want %v", trial, label, c, max, wantMax)
				}
			}
		}
		check(blk, "built")
		decoded, err := Unmarshal(blk.Marshal())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		check(decoded, "round-tripped")
	}
}

func randVal(rng *rand.Rand, k keyenc.Kind) keyenc.Value {
	switch k {
	case keyenc.KindInt64:
		return keyenc.I64(rng.Int63() - 1<<62)
	case keyenc.KindUint64:
		return keyenc.U64(rng.Uint64())
	case keyenc.KindFloat64:
		return keyenc.F64((rng.Float64() - 0.5) * 1e9)
	case keyenc.KindString:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return keyenc.Str(string(b))
	case keyenc.KindBytes:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return keyenc.Raw(b)
	default:
		return keyenc.B(rng.Intn(2) == 1)
	}
}
