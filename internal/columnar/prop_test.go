package columnar

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/keyenc"
)

// TestRandomBlocksRoundTrip builds blocks with random schemas and rows and
// verifies that (a) every value reads back equal, (b) per-column min/max
// match a naive computation, and (c) Marshal/Unmarshal is the identity on
// all observable state.
func TestRandomBlocksRoundTrip(t *testing.T) {
	kinds := []keyenc.Kind{
		keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
		keyenc.KindString, keyenc.KindBytes, keyenc.KindBool,
	}
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nCols := 1 + rng.Intn(6)
		cols := make([]Column, nCols)
		for i := range cols {
			cols[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: kinds[rng.Intn(len(kinds))]}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(schema)
		nRows := rng.Intn(200)
		rows := make([][]keyenc.Value, nRows)
		for r := range rows {
			row := make([]keyenc.Value, nCols)
			for c := range row {
				row[c] = randVal(rng, cols[c].Kind)
			}
			rows[r] = row
			if err := b.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		blk := b.Build()

		check := func(blk *Block, label string) {
			t.Helper()
			if blk.NumRows() != nRows {
				t.Fatalf("trial %d %s: rows = %d, want %d", trial, label, blk.NumRows(), nRows)
			}
			for r := range rows {
				for c := range rows[r] {
					if keyenc.Compare(blk.Value(r, c), rows[r][c]) != 0 {
						t.Fatalf("trial %d %s: (%d,%d) = %v, want %v", trial, label, r, c, blk.Value(r, c), rows[r][c])
					}
				}
			}
			for c := 0; c < nCols; c++ {
				min, okMin := blk.ColumnMin(c)
				max, okMax := blk.ColumnMax(c)
				if nRows == 0 {
					if okMin || okMax {
						t.Fatalf("trial %d %s: empty block has min/max", trial, label)
					}
					continue
				}
				wantMin, wantMax := rows[0][c], rows[0][c]
				for r := 1; r < nRows; r++ {
					if keyenc.Compare(rows[r][c], wantMin) < 0 {
						wantMin = rows[r][c]
					}
					if keyenc.Compare(rows[r][c], wantMax) > 0 {
						wantMax = rows[r][c]
					}
				}
				if !okMin || keyenc.Compare(min, wantMin) != 0 {
					t.Fatalf("trial %d %s: col %d min = %v, want %v", trial, label, c, min, wantMin)
				}
				if !okMax || keyenc.Compare(max, wantMax) != 0 {
					t.Fatalf("trial %d %s: col %d max = %v, want %v", trial, label, c, max, wantMax)
				}
			}
		}
		check(blk, "built")
		decoded, err := Unmarshal(blk.Marshal())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		check(decoded, "round-tripped")
	}
}

// TestForcedEncodingsRoundTrip exercises every encoding explicitly: for
// each forced encoding it builds random blocks (with bloom filters on
// every column), checks that kind-compatible columns actually took the
// forced encoding, and verifies values, encodings, and bloom filters
// survive Marshal/Unmarshal.
func TestForcedEncodingsRoundTrip(t *testing.T) {
	kinds := []keyenc.Kind{
		keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
		keyenc.KindString, keyenc.KindBytes, keyenc.KindBool,
	}
	encs := []Encoding{EncPlain, EncDict, EncBitPack, EncRLE}
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for _, force := range encs {
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*31 + int64(force)))
			nCols := 1 + rng.Intn(5)
			cols := make([]Column, nCols)
			bloomOrds := make([]int, nCols)
			for i := range cols {
				cols[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: kinds[rng.Intn(len(kinds))]}
				bloomOrds[i] = i
			}
			b := NewBuilder(MustSchema(cols...))
			b.ForceEncoding(force)
			b.AddBloom(bloomOrds...)
			nRows := 1 + rng.Intn(150)
			rows := make([][]keyenc.Value, nRows)
			for r := range rows {
				row := make([]keyenc.Value, nCols)
				for c := range row {
					// Low-cardinality draws so dict and RLE have something
					// to chew on; the forced path must hold regardless.
					if rng.Intn(2) == 0 {
						row[c] = lowCardVal(rng, cols[c].Kind)
					} else {
						row[c] = randVal(rng, cols[c].Kind)
					}
				}
				rows[r] = row
				if err := b.Append(row); err != nil {
					t.Fatal(err)
				}
			}
			blk := b.Build()

			check := func(blk *Block, label string) {
				t.Helper()
				for c := range cols {
					got := blk.ColumnEncoding(c)
					want := force
					if (force == EncDict && cols[c].Kind.Fixed()) ||
						(force == EncBitPack && !cols[c].Kind.Fixed()) {
						want = EncPlain // kind-incompatible force falls back
					}
					if got != want {
						t.Fatalf("%v trial %d %s: col %d (%v) encoding = %v, want %v",
							force, trial, label, c, cols[c].Kind, got, want)
					}
					if !blk.HasBloom(c) {
						t.Fatalf("%v trial %d %s: col %d missing bloom", force, trial, label, c)
					}
				}
				for r := range rows {
					for c := range rows[r] {
						if keyenc.Compare(blk.Value(r, c), rows[r][c]) != 0 {
							t.Fatalf("%v trial %d %s: (%d,%d) = %v, want %v",
								force, trial, label, r, c, blk.Value(r, c), rows[r][c])
						}
						if !blk.BloomMightContain(c, rows[r][c]) {
							t.Fatalf("%v trial %d %s: bloom rejects present value (%d,%d)",
								force, trial, label, r, c)
						}
					}
				}
			}
			check(blk, "built")
			decoded, err := Unmarshal(blk.Marshal())
			if err != nil {
				t.Fatalf("%v trial %d: %v", force, trial, err)
			}
			check(decoded, "round-tripped")
			if ps := blk.PlainSize(); len(blk.Marshal()) <= 0 || ps <= 0 {
				t.Fatalf("%v trial %d: non-positive sizes", force, trial)
			}
		}
	}
}

// TestAutoEncodingPicksCompact checks the auto selector's headline cases:
// repeated strings dictionary-encode, small-range ints bit-pack, sorted
// repetitive columns run-length-encode, and incompressible data stays
// plain — and that the encoded marshal never exceeds the plain layout.
func TestAutoEncodingPicksCompact(t *testing.T) {
	schema := MustSchema(
		Column{"region", keyenc.KindString},
		Column{"qty", keyenc.KindInt64},
		Column{"day", keyenc.KindUint64},
		Column{"blob", keyenc.KindBytes},
	)
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(schema)
	for r := 0; r < 512; r++ {
		blob := make([]byte, 16)
		rng.Read(blob)
		row := []keyenc.Value{
			keyenc.Str(fmt.Sprintf("region-%d", r%4)),
			keyenc.I64(int64(r % 100)),
			keyenc.U64(uint64(r / 128)), // sorted, 4 distinct values
			keyenc.Raw(blob),
		}
		if err := b.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	blk := b.Build()
	wantEnc := []Encoding{EncDict, EncBitPack, EncRLE, EncPlain}
	for c, want := range wantEnc {
		if got := blk.ColumnEncoding(c); got != want {
			t.Errorf("col %d encoding = %v, want %v", c, got, want)
		}
	}
	if enc, plain := len(blk.Marshal()), blk.PlainSize(); enc >= plain {
		t.Errorf("encoded size %d not smaller than plain %d", enc, plain)
	}
}

// TestV1BlockCompat writes blocks in the legacy version-1 layout with a
// test-local writer and checks that Unmarshal still loads them — values,
// min/max, and a subsequent re-marshal in the current format all intact.
func TestV1BlockCompat(t *testing.T) {
	kinds := []keyenc.Kind{
		keyenc.KindInt64, keyenc.KindUint64, keyenc.KindFloat64,
		keyenc.KindString, keyenc.KindBytes, keyenc.KindBool,
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		nCols := 1 + rng.Intn(5)
		cols := make([]Column, nCols)
		for i := range cols {
			cols[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: kinds[rng.Intn(len(kinds))]}
		}
		nRows := rng.Intn(120)
		rows := make([][]keyenc.Value, nRows)
		for r := range rows {
			row := make([]keyenc.Value, nCols)
			for c := range row {
				row[c] = randVal(rng, cols[c].Kind)
			}
			rows[r] = row
		}

		data := marshalV1(cols, rows)
		blk, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("trial %d: v1 block rejected: %v", trial, err)
		}
		check := func(blk *Block, label string) {
			t.Helper()
			if blk.NumRows() != nRows {
				t.Fatalf("trial %d %s: rows = %d, want %d", trial, label, blk.NumRows(), nRows)
			}
			for c := range cols {
				if blk.HasBloom(c) {
					t.Fatalf("trial %d %s: v1 column %d grew a bloom filter", trial, label, c)
				}
			}
			for r := range rows {
				for c := range rows[r] {
					if keyenc.Compare(blk.Value(r, c), rows[r][c]) != 0 {
						t.Fatalf("trial %d %s: (%d,%d) = %v, want %v",
							trial, label, r, c, blk.Value(r, c), rows[r][c])
					}
				}
			}
		}
		check(blk, "v1")
		// Upgrade path: re-marshal in the current format and reload.
		upgraded, err := Unmarshal(blk.Marshal())
		if err != nil {
			t.Fatalf("trial %d: re-marshal: %v", trial, err)
		}
		check(upgraded, "upgraded")
	}
}

// marshalV1 writes the legacy version-1 block layout: plain columns only,
// no encoding tag, no bloom filters. It exists only in tests — production
// code always writes the current version — so compatibility coverage does
// not keep dead code in the shipping binary.
func marshalV1(cols []Column, rows [][]keyenc.Value) []byte {
	out := []byte(blockMagicV1)
	out = binary.BigEndian.AppendUint32(out, uint32(len(rows)))
	out = binary.BigEndian.AppendUint16(out, uint16(len(cols)))
	for c, col := range cols {
		out = append(out, byte(col.Kind))
		out = binary.BigEndian.AppendUint16(out, uint16(len(col.Name)))
		out = append(out, col.Name...)
		if len(rows) > 0 {
			min, max := rows[0][c], rows[0][c]
			for _, row := range rows[1:] {
				if keyenc.Compare(row[c], min) < 0 {
					min = row[c]
				}
				if keyenc.Compare(row[c], max) > 0 {
					max = row[c]
				}
			}
			out = append(out, 1)
			minEnc := keyenc.Append(nil, min)
			out = binary.BigEndian.AppendUint32(out, uint32(len(minEnc)))
			out = append(out, minEnc...)
			maxEnc := keyenc.Append(nil, max)
			out = binary.BigEndian.AppendUint32(out, uint32(len(maxEnc)))
			out = append(out, maxEnc...)
		} else {
			out = append(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
		}
		if col.Kind.Fixed() {
			for _, row := range rows {
				out = binary.BigEndian.AppendUint64(out, rawBits(row[c]))
			}
		} else {
			off := uint32(0)
			offs := []uint32{0}
			for _, row := range rows {
				off += uint32(len(row[c].Bytes()))
				offs = append(offs, off)
			}
			for _, o := range offs {
				out = binary.BigEndian.AppendUint32(out, o)
			}
			for _, row := range rows {
				out = append(out, row[c].Bytes()...)
			}
		}
	}
	return out
}

// lowCardVal draws from a handful of distinct values per kind.
func lowCardVal(rng *rand.Rand, k keyenc.Kind) keyenc.Value {
	n := int64(rng.Intn(5))
	switch k {
	case keyenc.KindInt64:
		return keyenc.I64(n * 100)
	case keyenc.KindUint64:
		return keyenc.U64(uint64(n))
	case keyenc.KindFloat64:
		return keyenc.F64(float64(n) * 2.5)
	case keyenc.KindString:
		return keyenc.Str(fmt.Sprintf("v%d", n))
	case keyenc.KindBytes:
		return keyenc.Raw([]byte{byte(n), byte(n)})
	default:
		return keyenc.B(n%2 == 1)
	}
}

func randVal(rng *rand.Rand, k keyenc.Kind) keyenc.Value {
	switch k {
	case keyenc.KindInt64:
		return keyenc.I64(rng.Int63() - 1<<62)
	case keyenc.KindUint64:
		return keyenc.U64(rng.Uint64())
	case keyenc.KindFloat64:
		return keyenc.F64((rng.Float64() - 0.5) * 1e9)
	case keyenc.KindString:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return keyenc.Str(string(b))
	case keyenc.KindBytes:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return keyenc.Raw(b)
	default:
		return keyenc.B(rng.Intn(2) == 1)
	}
}
