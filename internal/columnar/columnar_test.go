package columnar

import (
	"bytes"
	"testing"
	"testing/quick"

	"umzi/internal/keyenc"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"device", keyenc.KindInt64},
		Column{"msg", keyenc.KindUint64},
		Column{"temp", keyenc.KindFloat64},
		Column{"tag", keyenc.KindString},
		Column{"payload", keyenc.KindBytes},
		Column{"ok", keyenc.KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleRows() [][]keyenc.Value {
	return [][]keyenc.Value{
		{keyenc.I64(4), keyenc.U64(1), keyenc.F64(20.5), keyenc.Str("a"), keyenc.Raw([]byte{1, 0, 2}), keyenc.B(true)},
		{keyenc.I64(-9), keyenc.U64(2), keyenc.F64(-3.25), keyenc.Str("zz"), keyenc.Raw(nil), keyenc.B(false)},
		{keyenc.I64(100), keyenc.U64(0), keyenc.F64(0), keyenc.Str(""), keyenc.Raw([]byte{0xFF}), keyenc.B(true)},
	}
}

func buildSample(t *testing.T) *Block {
	t.Helper()
	b := NewBuilder(testSchema(t))
	for _, row := range sampleRows() {
		if err := b.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{"", keyenc.KindInt64}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{"a", keyenc.KindInt64}, Column{"a", keyenc.KindUint64}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema(Column{"a", keyenc.KindInvalid}); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.NumCols() != 6 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	i, ok := s.ColIndex("temp")
	if !ok || i != 2 {
		t.Errorf("ColIndex(temp) = %d, %v", i, ok)
	}
	if _, ok := s.ColIndex("nope"); ok {
		t.Error("ColIndex of missing column reported ok")
	}
	if s.Col(3).Name != "tag" {
		t.Errorf("Col(3) = %+v", s.Col(3))
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Column{"x", keyenc.KindInt64})
	b := MustSchema(Column{"x", keyenc.KindInt64})
	c := MustSchema(Column{"x", keyenc.KindUint64})
	d := MustSchema(Column{"x", keyenc.KindInt64}, Column{"y", keyenc.KindBool})
	if !a.Equal(b) {
		t.Error("identical schemas not equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different schemas compare equal")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema()
}

func TestBuilderAppendAndValues(t *testing.T) {
	blk := buildSample(t)
	rows := sampleRows()
	if blk.NumRows() != len(rows) {
		t.Fatalf("NumRows = %d", blk.NumRows())
	}
	for r, row := range rows {
		for c, want := range row {
			got := blk.Value(r, c)
			if keyenc.Compare(got, want) != 0 {
				t.Errorf("Value(%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestBuilderRowWidthMismatch(t *testing.T) {
	b := NewBuilder(testSchema(t))
	if err := b.Append([]keyenc.Value{keyenc.I64(1)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestBuilderKindMismatch(t *testing.T) {
	b := NewBuilder(MustSchema(Column{"a", keyenc.KindInt64}))
	if err := b.Append([]keyenc.Value{keyenc.U64(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	// A failed Append must not half-write the row.
	if b.NumRows() != 0 {
		t.Error("failed Append mutated builder")
	}
}

func TestBuilderStrRawInterchange(t *testing.T) {
	b := NewBuilder(MustSchema(Column{"s", keyenc.KindString}, Column{"b", keyenc.KindBytes}))
	err := b.Append([]keyenc.Value{keyenc.Raw([]byte("x")), keyenc.Str("y")})
	if err != nil {
		t.Fatalf("Str/Raw interchange rejected: %v", err)
	}
}

func TestBlockRow(t *testing.T) {
	blk := buildSample(t)
	row := blk.Row(1, nil)
	want := sampleRows()[1]
	if len(row) != len(want) {
		t.Fatalf("Row len = %d", len(row))
	}
	for i := range row {
		if keyenc.Compare(row[i], want[i]) != 0 {
			t.Errorf("Row[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestColumnMinMax(t *testing.T) {
	blk := buildSample(t)
	min, ok := blk.ColumnMin(0)
	if !ok || min.Int() != -9 {
		t.Errorf("min(device) = %v, %v", min, ok)
	}
	max, ok := blk.ColumnMax(0)
	if !ok || max.Int() != 100 {
		t.Errorf("max(device) = %v, %v", max, ok)
	}
	minS, _ := blk.ColumnMin(3)
	maxS, _ := blk.ColumnMax(3)
	if string(minS.Bytes()) != "" || string(maxS.Bytes()) != "zz" {
		t.Errorf("string min/max = %v/%v", minS, maxS)
	}
}

func TestColumnMinMaxEmptyBlock(t *testing.T) {
	blk := NewBuilder(testSchema(t)).Build()
	if _, ok := blk.ColumnMin(0); ok {
		t.Error("empty block reported a min")
	}
	if _, ok := blk.ColumnMax(0); ok {
		t.Error("empty block reported a max")
	}
}

func TestMinMaxNoAliasing(t *testing.T) {
	b := NewBuilder(MustSchema(Column{"p", keyenc.KindBytes}))
	buf := []byte("zzz")
	if err := b.Append([]keyenc.Value{keyenc.Raw(buf)}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'a' // caller reuses its buffer
	if err := b.Append([]keyenc.Value{keyenc.Raw([]byte("mmm"))}); err != nil {
		t.Fatal(err)
	}
	blk := b.Build()
	max, _ := blk.ColumnMax(0)
	if string(max.Bytes()) != "zzz" {
		t.Errorf("max corrupted by caller buffer reuse: %q", max.Bytes())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	blk := buildSample(t)
	data := blk.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(blk.Schema()) {
		t.Fatal("schema lost in round trip")
	}
	if got.NumRows() != blk.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), blk.NumRows())
	}
	for r := 0; r < blk.NumRows(); r++ {
		for c := 0; c < blk.Schema().NumCols(); c++ {
			if keyenc.Compare(got.Value(r, c), blk.Value(r, c)) != 0 {
				t.Errorf("(%d,%d): %v != %v", r, c, got.Value(r, c), blk.Value(r, c))
			}
		}
	}
	for c := 0; c < blk.Schema().NumCols(); c++ {
		m1, _ := blk.ColumnMin(c)
		m2, _ := got.ColumnMin(c)
		if keyenc.Compare(m1, m2) != 0 {
			t.Errorf("min[%d] lost: %v != %v", c, m1, m2)
		}
	}
}

func TestMarshalEmptyBlock(t *testing.T) {
	blk := NewBuilder(testSchema(t)).Build()
	got, err := Unmarshal(blk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	blk := buildSample(t)
	data := blk.Marshal()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXXXXXX"), data[8:]...),
		"truncated":   data[:len(data)/2],
		"header only": data[:14],
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: Unmarshal accepted corrupt input", name)
		}
	}
}

func TestUnmarshalQuickNoPanic(t *testing.T) {
	// Unmarshal must return errors, never panic, on arbitrary input.
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", data, r)
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	blk := buildSample(t)
	if !bytes.Equal(blk.Marshal(), blk.Marshal()) {
		t.Error("Marshal must be deterministic")
	}
}

func BenchmarkBlockBuild(b *testing.B) {
	schema := MustSchema(Column{"k", keyenc.KindInt64}, Column{"v", keyenc.KindBytes})
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(schema)
		for j := 0; j < 1000; j++ {
			_ = bld.Append([]keyenc.Value{keyenc.I64(int64(j)), keyenc.Raw(payload)})
		}
		bld.Build()
	}
}

// BenchmarkBuilderAppend measures the steady-state per-row cost of
// Append, including the arena-backed min/max synopsis clones. The
// allocation count per op is the headline number: before the arena,
// every appended value could clone min and max individually.
func BenchmarkBuilderAppend(b *testing.B) {
	schema := MustSchema(
		Column{"k", keyenc.KindInt64},
		Column{"tag", keyenc.KindString},
		Column{"v", keyenc.KindBytes},
	)
	payload := []byte("0123456789abcdef")
	rows := make([][]keyenc.Value, 64)
	for j := range rows {
		rows[j] = []keyenc.Value{
			keyenc.I64(int64(j * 37 % 101)),
			keyenc.Str("tag-" + string(rune('a'+j%7))),
			keyenc.Raw(payload),
		}
	}
	b.ReportAllocs()
	var bld *Builder
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			bld = NewBuilder(schema)
		}
		_ = bld.Append(rows[i%len(rows)])
	}
}

func BenchmarkBlockMarshal(b *testing.B) {
	schema := MustSchema(Column{"k", keyenc.KindInt64}, Column{"v", keyenc.KindBytes})
	bld := NewBuilder(schema)
	for j := 0; j < 1000; j++ {
		_ = bld.Append([]keyenc.Value{keyenc.I64(int64(j)), keyenc.Raw([]byte("0123456789abcdef"))})
	}
	blk := bld.Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Marshal()
	}
}
