package columnar

import (
	"math/bits"

	"umzi/internal/keyenc"
)

// Per-column bloom filters complement the min/max synopses: a synopsis
// excludes a block when the probe value falls outside the column's
// range, a bloom excludes it when the value falls inside the range but
// was never stored — the common case for point lookups over hashed or
// sparse key spaces. Filters are built at Builder.Build() time for the
// columns the caller designates (the groomer picks primary-key and
// index-equality columns) and are carried through Marshal/Unmarshal.
//
// Sizing targets ~10 bits per distinct row with 7 probes, giving a false
// positive rate under 1%. Hashing is FNV-1a over the value's canonical
// bytes (the 8-byte sort key for fixed kinds, the raw payload for
// variable kinds) split into two halves for Kirsch–Mitzenmacher double
// hashing.

// bloom is a per-column membership filter. The word count is a power of
// two so probe positions reduce with a mask instead of a division.
type bloom struct {
	k     uint8 // number of probes
	words []uint64
}

const (
	bloomBitsPerRow = 10
	bloomProbes     = 7
)

// newBloom sizes an empty filter for n insertions.
func newBloom(n int) *bloom {
	mbits := n * bloomBitsPerRow
	if mbits < 64 {
		mbits = 64
	}
	words := 1 << uint(bits.Len64(uint64((mbits+63)/64-1)))
	return &bloom{k: bloomProbes, words: make([]uint64, words)}
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// bloomHashBytes is FNV-1a over b.
func bloomHashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// bloomHashKey is FNV-1a over the big-endian bytes of a fixed kind's
// sort key.
func bloomHashKey(key uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 56; i >= 0; i -= 8 {
		h ^= (key >> uint(i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// bloomHashValue hashes a value through its canonical bytes for the
// kind: sort key for fixed kinds, raw payload for variable kinds.
func bloomHashValue(kind keyenc.Kind, v keyenc.Value) uint64 {
	if kind.Fixed() {
		return bloomHashKey(keyenc.SortKeyBits(kind, rawBits(v)))
	}
	return bloomHashBytes(v.Bytes())
}

func (f *bloom) add(h uint64) {
	h1, h2 := h, h>>33|h<<31|1
	mask := uint64(len(f.words))*64 - 1
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) & mask
		f.words[bit>>6] |= 1 << (bit & 63)
	}
}

func (f *bloom) mightContain(h uint64) bool {
	h1, h2 := h, h>>33|h<<31|1
	mask := uint64(len(f.words))*64 - 1
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) & mask
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}
