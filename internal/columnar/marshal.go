package columnar

import (
	"encoding/binary"
	"fmt"

	"umzi/internal/keyenc"
)

// Wire format of a Block (all integers big-endian), version 2:
//
//	magic   [8]byte  "UMZICOL2"
//	rows    u32
//	ncols   u16
//	per column:
//	    kind     u8
//	    nameLen  u16, name
//	    has      u8 (1 if min/max present, i.e. rows > 0)
//	    minLen   u32, min encoding (keyenc ascending)
//	    maxLen   u32, max encoding
//	    enc      u8 (Encoding)
//	    bloomK   u8 (0: no bloom filter)
//	    if bloomK > 0:
//	        bloomWords  u32, words × u64
//	    column body, by enc:
//	        plain, fixed kind:  nums  rows × u64
//	        plain, var kind:    offsets (rows+1) × u32, payload
//	        bitpack:            base u64, width u8, nwords u32, words × u64
//	        dict:               ndict u32, dictOffsets (ndict+1) × u32,
//	                            dictPayload, width u8, nwords u32, words × u64
//	        rle:                nruns u32, runEnds nruns × u32, then
//	                            fixed: nruns × u64
//	                            var:   runOffsets (nruns+1) × u32, runPayload
//
// The format is self-describing: Unmarshal rebuilds the schema from the
// header, so readers need no side-channel schema registry. Version 1
// blocks ("UMZICOL1": plain columns only, no blooms) still load — the
// reader dispatches on the magic — so stores written before the encoding
// work keep working without a rewrite.

const (
	blockMagicV1 = "UMZICOL1"
	blockMagicV2 = "UMZICOL2"
)

// Marshal encodes the block for storage as one immutable object.
func (blk *Block) Marshal() []byte {
	out := make([]byte, 0, blk.marshalSize())
	out = append(out, blockMagicV2...)
	out = binary.BigEndian.AppendUint32(out, uint32(blk.rows))
	out = binary.BigEndian.AppendUint16(out, uint16(blk.schema.NumCols()))
	for i := 0; i < blk.schema.NumCols(); i++ {
		col := blk.schema.Col(i)
		out = append(out, byte(col.Kind))
		out = binary.BigEndian.AppendUint16(out, uint16(len(col.Name)))
		out = append(out, col.Name...)
		if blk.rows > 0 {
			out = append(out, 1)
			minEnc := keyenc.Append(nil, blk.mins[i])
			maxEnc := keyenc.Append(nil, blk.maxs[i])
			out = binary.BigEndian.AppendUint32(out, uint32(len(minEnc)))
			out = append(out, minEnc...)
			out = binary.BigEndian.AppendUint32(out, uint32(len(maxEnc)))
			out = append(out, maxEnc...)
		} else {
			out = append(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
		}
		c := &blk.cols[i]
		out = append(out, byte(c.enc))
		if c.bloom != nil {
			out = append(out, c.bloom.k)
			out = binary.BigEndian.AppendUint32(out, uint32(len(c.bloom.words)))
			for _, w := range c.bloom.words {
				out = binary.BigEndian.AppendUint64(out, w)
			}
		} else {
			out = append(out, 0)
		}
		switch c.enc {
		case EncPlain:
			if col.Kind.Fixed() {
				for _, n := range c.nums {
					out = binary.BigEndian.AppendUint64(out, n)
				}
			} else {
				out = appendU32s(out, c.offsets)
				out = append(out, c.payload...)
			}
		case EncBitPack:
			out = binary.BigEndian.AppendUint64(out, c.base)
			out = append(out, c.width)
			out = binary.BigEndian.AppendUint32(out, uint32(len(c.packed)))
			for _, w := range c.packed {
				out = binary.BigEndian.AppendUint64(out, w)
			}
		case EncDict:
			ndict := len(c.dictOffsets) - 1
			out = binary.BigEndian.AppendUint32(out, uint32(ndict))
			out = appendU32s(out, c.dictOffsets)
			out = append(out, c.dictPayload...)
			out = append(out, c.width)
			out = binary.BigEndian.AppendUint32(out, uint32(len(c.packed)))
			for _, w := range c.packed {
				out = binary.BigEndian.AppendUint64(out, w)
			}
		case EncRLE:
			out = binary.BigEndian.AppendUint32(out, uint32(len(c.runEnds)))
			out = appendU32s(out, c.runEnds)
			if col.Kind.Fixed() {
				for _, n := range c.runNums {
					out = binary.BigEndian.AppendUint64(out, n)
				}
			} else {
				out = appendU32s(out, c.runOffsets)
				out = append(out, c.runPayload...)
			}
		}
	}
	return out
}

func appendU32s(out []byte, vals []uint32) []byte {
	for _, v := range vals {
		out = binary.BigEndian.AppendUint32(out, v)
	}
	return out
}

// marshalSize computes the exact length Marshal will produce.
func (blk *Block) marshalSize() int {
	size := 8 + 4 + 2
	for i := 0; i < blk.schema.NumCols(); i++ {
		size += 1 + 2 + len(blk.schema.Col(i).Name) + 1 + 4 + 4
		if blk.rows > 0 {
			size += keyenc.EncodedLen(blk.mins[i]) + keyenc.EncodedLen(blk.maxs[i])
		}
		c := &blk.cols[i]
		size += 1 + 1 // enc, bloomK
		if c.bloom != nil {
			size += 4 + 8*len(c.bloom.words)
		}
		switch c.enc {
		case EncPlain:
			size += plainBodySize(c, blk.schema.Col(i).Kind.Fixed())
		case EncBitPack:
			size += 8 + 1 + 4 + 8*len(c.packed)
		case EncDict:
			size += 4 + 4*len(c.dictOffsets) + len(c.dictPayload) + 1 + 4 + 8*len(c.packed)
		case EncRLE:
			size += 4 + 4*len(c.runEnds)
			if blk.schema.Col(i).Kind.Fixed() {
				size += 8 * len(c.runNums)
			} else {
				size += 4*len(c.runOffsets) + len(c.runPayload)
			}
		}
	}
	return size
}

// PlainSize returns the number of bytes the block would occupy marshaled
// with every column plain and no bloom filters — the version-1 layout.
// Inspection and benchmarks use it as the uncompressed baseline when
// reporting encoding savings.
func (blk *Block) PlainSize() int {
	size := 8 + 4 + 2
	for i := 0; i < blk.schema.NumCols(); i++ {
		col := blk.schema.Col(i)
		size += 1 + 2 + len(col.Name) + 1 + 4 + 4
		if blk.rows > 0 {
			size += keyenc.EncodedLen(blk.mins[i]) + keyenc.EncodedLen(blk.maxs[i])
		}
		if col.Kind.Fixed() {
			size += 8 * blk.rows
		} else {
			size += 4 * (blk.rows + 1)
			for r := 0; r < blk.rows; r++ {
				size += len(blk.varAt(i, r))
			}
		}
	}
	return size
}

// MemSize estimates the decoded block's resident memory: every encoded
// column body plus fixed per-column and per-block struct overhead. Block
// caches use it as the charge unit for byte budgeting, so it only needs
// to track the real footprint closely enough that a budget of N bytes
// holds roughly N bytes of blocks.
func (blk *Block) MemSize() int {
	const (
		blockOverhead  = 96  // Block struct + schema pointer + slice headers
		columnOverhead = 160 // column struct: encoding tag + 8 slice headers
		valueOverhead  = 48  // keyenc.Value tagged union (min + max entries)
	)
	size := blockOverhead
	for i := range blk.cols {
		c := &blk.cols[i]
		size += columnOverhead + valueOverhead
		size += 8*len(c.nums) + 4*len(c.offsets) + len(c.payload)
		size += 8 * len(c.packed)
		size += 4*len(c.dictOffsets) + len(c.dictPayload)
		size += 4*len(c.runEnds) + 8*len(c.runNums) + 4*len(c.runOffsets) + len(c.runPayload)
		if c.bloom != nil {
			size += 8*len(c.bloom.words) + 16
		}
	}
	return size
}

// Unmarshal decodes a block previously produced by Marshal, accepting
// both the current version-2 format and the legacy version-1 format.
func Unmarshal(data []byte) (*Block, error) {
	r := reader{b: data}
	magic, err := r.take(8)
	if err != nil {
		return nil, fmt.Errorf("columnar: bad magic")
	}
	var v2 bool
	switch string(magic) {
	case blockMagicV1:
	case blockMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("columnar: bad magic")
	}
	rows64, err := r.u32()
	if err != nil {
		return nil, err
	}
	rows := int(rows64)
	ncols64, err := r.u16()
	if err != nil {
		return nil, err
	}
	ncols := int(ncols64)
	if ncols == 0 {
		return nil, fmt.Errorf("columnar: zero columns")
	}

	cols := make([]Column, ncols)
	data2 := make([]column, ncols)
	mins := make([]keyenc.Value, ncols)
	maxs := make([]keyenc.Value, ncols)
	for i := 0; i < ncols; i++ {
		kindB, err := r.u8()
		if err != nil {
			return nil, err
		}
		kind := keyenc.Kind(kindB)
		nameLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		name, err := r.take(int(nameLen))
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: string(name), Kind: kind}

		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		minLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		minEnc, err := r.take(int(minLen))
		if err != nil {
			return nil, err
		}
		maxLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		maxEnc, err := r.take(int(maxLen))
		if err != nil {
			return nil, err
		}
		if has == 1 {
			v, _, err := keyenc.Decode(minEnc, kind)
			if err != nil {
				return nil, fmt.Errorf("columnar: column %d min: %w", i, err)
			}
			mins[i] = v
			v, _, err = keyenc.Decode(maxEnc, kind)
			if err != nil {
				return nil, fmt.Errorf("columnar: column %d max: %w", i, err)
			}
			maxs[i] = v
		}

		c := &data2[i]
		if v2 {
			if err := readColumnV2(&r, c, kind, rows, i); err != nil {
				return nil, err
			}
		} else {
			if err := readColumnV1(&r, c, kind, rows); err != nil {
				return nil, err
			}
		}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &Block{schema: schema, rows: rows, cols: data2, mins: mins, maxs: maxs}, nil
}

// readColumnV1 reads a version-1 (always plain, no bloom) column body.
func readColumnV1(r *reader, c *column, kind keyenc.Kind, rows int) error {
	c.enc = EncPlain
	if kind.Fixed() {
		nums, err := r.u64s(rows)
		if err != nil {
			return err
		}
		c.nums = nums
		return nil
	}
	offsets, err := r.u32s(rows + 1)
	if err != nil {
		return err
	}
	payload, err := r.take(int(offsets[rows]))
	if err != nil {
		return err
	}
	// Validate monotonic offsets so Value never panics on corrupted
	// input.
	for j := 0; j < rows; j++ {
		if offsets[j] > offsets[j+1] {
			return fmt.Errorf("columnar: offsets not monotonic")
		}
	}
	c.offsets = offsets
	c.payload = append([]byte(nil), payload...)
	return nil
}

// readColumnV2 reads a version-2 column: encoding tag, optional bloom
// filter, and the encoding-specific body, validating every structural
// invariant so a corrupted block fails Unmarshal instead of panicking in
// Value.
func readColumnV2(r *reader, c *column, kind keyenc.Kind, rows, col int) error {
	encB, err := r.u8()
	if err != nil {
		return err
	}
	c.enc = Encoding(encB)
	bloomK, err := r.u8()
	if err != nil {
		return err
	}
	if bloomK > 0 {
		nwords, err := r.u32()
		if err != nil {
			return err
		}
		if nwords == 0 || nwords&(nwords-1) != 0 || nwords > 1<<26 {
			return fmt.Errorf("columnar: column %d: bad bloom size %d", col, nwords)
		}
		words, err := r.u64s(int(nwords))
		if err != nil {
			return err
		}
		c.bloom = &bloom{k: bloomK, words: words}
	}
	switch c.enc {
	case EncPlain:
		return readColumnV1(r, c, kind, rows)
	case EncBitPack:
		if !kind.Fixed() {
			return fmt.Errorf("columnar: column %d: bitpack on %v", col, kind)
		}
		base, err := r.u64s(1)
		if err != nil {
			return err
		}
		c.base = base[0]
		width, err := r.u8()
		if err != nil {
			return err
		}
		if width > 64 {
			return fmt.Errorf("columnar: column %d: bit width %d", col, width)
		}
		c.width = width
		c.packed, err = r.packedBody(rows, width, col)
		return err
	case EncDict:
		if kind.Fixed() {
			return fmt.Errorf("columnar: column %d: dict on %v", col, kind)
		}
		ndict64, err := r.u32()
		if err != nil {
			return err
		}
		ndict := int(ndict64)
		if rows > 0 && ndict == 0 {
			return fmt.Errorf("columnar: column %d: empty dictionary", col)
		}
		offs, err := r.u32s(ndict + 1)
		if err != nil {
			return err
		}
		for j := 0; j < ndict; j++ {
			if offs[j] > offs[j+1] {
				return fmt.Errorf("columnar: column %d: dict offsets not monotonic", col)
			}
		}
		pay, err := r.take(int(offs[ndict]))
		if err != nil {
			return err
		}
		c.dictOffsets = offs
		c.dictPayload = append([]byte(nil), pay...)
		width, err := r.u8()
		if err != nil {
			return err
		}
		if width > 64 {
			return fmt.Errorf("columnar: column %d: code width %d", col, width)
		}
		c.width = width
		if c.packed, err = r.packedBody(rows, width, col); err != nil {
			return err
		}
		for j := 0; j < rows; j++ {
			if packGet(c.packed, width, j) >= uint64(ndict) {
				return fmt.Errorf("columnar: column %d: dict code out of range at row %d", col, j)
			}
		}
		return nil
	case EncRLE:
		nruns64, err := r.u32()
		if err != nil {
			return err
		}
		nruns := int(nruns64)
		if (nruns == 0) != (rows == 0) {
			return fmt.Errorf("columnar: column %d: %d runs for %d rows", col, nruns, rows)
		}
		ends, err := r.u32s(nruns)
		if err != nil {
			return err
		}
		for j, e := range ends {
			if (j > 0 && e <= ends[j-1]) || (j == 0 && e == 0) {
				return fmt.Errorf("columnar: column %d: run ends not increasing", col)
			}
		}
		if nruns > 0 && int(ends[nruns-1]) != rows {
			return fmt.Errorf("columnar: column %d: runs cover %d of %d rows", col, ends[nruns-1], rows)
		}
		c.runEnds = ends
		if kind.Fixed() {
			c.runNums, err = r.u64s(nruns)
			return err
		}
		roffs, err := r.u32s(nruns + 1)
		if err != nil {
			return err
		}
		for j := 0; j < nruns; j++ {
			if roffs[j] > roffs[j+1] {
				return fmt.Errorf("columnar: column %d: run offsets not monotonic", col)
			}
		}
		pay, err := r.take(int(roffs[nruns]))
		if err != nil {
			return err
		}
		c.runOffsets = roffs
		c.runPayload = append([]byte(nil), pay...)
		return nil
	default:
		return fmt.Errorf("columnar: column %d: unknown encoding %d", col, encB)
	}
}

// packedBody reads a bit-packed word array, validating the word count
// against the row count and width.
func (r *reader) packedBody(rows int, width uint8, col int) ([]uint64, error) {
	nwords, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(nwords) != packedWords(rows, width) {
		return nil, fmt.Errorf("columnar: column %d: %d packed words for %d rows at width %d", col, nwords, rows, width)
	}
	return r.u64s(int(nwords))
}

// reader is a tiny bounds-checked cursor.
type reader struct {
	b   []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("columnar: truncated block (%d bytes at %d of %d)", n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u32s(n int) ([]uint32, error) {
	raw, err := r.take(4 * n)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(raw[4*i:])
	}
	return out, nil
}

func (r *reader) u64s(n int) ([]uint64, error) {
	raw, err := r.take(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(raw[8*i:])
	}
	return out, nil
}
