package columnar

import (
	"encoding/binary"
	"fmt"

	"umzi/internal/keyenc"
)

// Wire format of a Block (all integers big-endian):
//
//	magic   [8]byte  "UMZICOL1"
//	rows    u32
//	ncols   u16
//	per column:
//	    kind     u8
//	    nameLen  u16, name
//	    has      u8 (1 if min/max present, i.e. rows > 0)
//	    minLen   u32, min encoding (keyenc ascending)
//	    maxLen   u32, max encoding
//	    if fixed kind:
//	        nums  rows × u64
//	    else:
//	        offsets  (rows+1) × u32
//	        payload  offsets[rows] bytes
//
// The format is self-describing: Unmarshal rebuilds the schema from the
// header, so readers need no side-channel schema registry.

const blockMagic = "UMZICOL1"

// Marshal encodes the block for storage as one immutable object.
func (blk *Block) Marshal() []byte {
	size := 8 + 4 + 2
	for i := 0; i < blk.schema.NumCols(); i++ {
		size += 1 + 2 + len(blk.schema.Col(i).Name) + 1 + 4 + 4
		c := &blk.cols[i]
		if blk.schema.Col(i).Kind.Fixed() {
			size += 8 * blk.rows
		} else {
			size += 4*(blk.rows+1) + len(c.payload)
		}
		if blk.rows > 0 {
			size += keyenc.EncodedLen(blk.mins[i]) + keyenc.EncodedLen(blk.maxs[i])
		}
	}
	out := make([]byte, 0, size)
	out = append(out, blockMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(blk.rows))
	out = binary.BigEndian.AppendUint16(out, uint16(blk.schema.NumCols()))
	for i := 0; i < blk.schema.NumCols(); i++ {
		col := blk.schema.Col(i)
		out = append(out, byte(col.Kind))
		out = binary.BigEndian.AppendUint16(out, uint16(len(col.Name)))
		out = append(out, col.Name...)
		if blk.rows > 0 {
			out = append(out, 1)
			minEnc := keyenc.Append(nil, blk.mins[i])
			maxEnc := keyenc.Append(nil, blk.maxs[i])
			out = binary.BigEndian.AppendUint32(out, uint32(len(minEnc)))
			out = append(out, minEnc...)
			out = binary.BigEndian.AppendUint32(out, uint32(len(maxEnc)))
			out = append(out, maxEnc...)
		} else {
			out = append(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
			out = binary.BigEndian.AppendUint32(out, 0)
		}
		c := &blk.cols[i]
		if col.Kind.Fixed() {
			for _, n := range c.nums {
				out = binary.BigEndian.AppendUint64(out, n)
			}
		} else {
			for _, o := range c.offsets {
				out = binary.BigEndian.AppendUint32(out, o)
			}
			out = append(out, c.payload...)
		}
	}
	return out
}

// Unmarshal decodes a block previously produced by Marshal.
func Unmarshal(data []byte) (*Block, error) {
	r := reader{b: data}
	magic, err := r.take(8)
	if err != nil || string(magic) != blockMagic {
		return nil, fmt.Errorf("columnar: bad magic")
	}
	rows64, err := r.u32()
	if err != nil {
		return nil, err
	}
	rows := int(rows64)
	ncols64, err := r.u16()
	if err != nil {
		return nil, err
	}
	ncols := int(ncols64)
	if ncols == 0 {
		return nil, fmt.Errorf("columnar: zero columns")
	}

	cols := make([]Column, ncols)
	data2 := make([]column, ncols)
	mins := make([]keyenc.Value, ncols)
	maxs := make([]keyenc.Value, ncols)
	for i := 0; i < ncols; i++ {
		kindB, err := r.u8()
		if err != nil {
			return nil, err
		}
		kind := keyenc.Kind(kindB)
		nameLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		name, err := r.take(int(nameLen))
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: string(name), Kind: kind}

		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		minLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		minEnc, err := r.take(int(minLen))
		if err != nil {
			return nil, err
		}
		maxLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		maxEnc, err := r.take(int(maxLen))
		if err != nil {
			return nil, err
		}
		if has == 1 {
			v, _, err := keyenc.Decode(minEnc, kind)
			if err != nil {
				return nil, fmt.Errorf("columnar: column %d min: %w", i, err)
			}
			mins[i] = v
			v, _, err = keyenc.Decode(maxEnc, kind)
			if err != nil {
				return nil, fmt.Errorf("columnar: column %d max: %w", i, err)
			}
			maxs[i] = v
		}

		if kind.Fixed() {
			raw, err := r.take(8 * rows)
			if err != nil {
				return nil, err
			}
			nums := make([]uint64, rows)
			for j := 0; j < rows; j++ {
				nums[j] = binary.BigEndian.Uint64(raw[8*j:])
			}
			data2[i].nums = nums
		} else {
			raw, err := r.take(4 * (rows + 1))
			if err != nil {
				return nil, err
			}
			offsets := make([]uint32, rows+1)
			for j := range offsets {
				offsets[j] = binary.BigEndian.Uint32(raw[4*j:])
			}
			payload, err := r.take(int(offsets[rows]))
			if err != nil {
				return nil, err
			}
			// Validate monotonic offsets so Value never panics on
			// corrupted input.
			for j := 0; j < rows; j++ {
				if offsets[j] > offsets[j+1] {
					return nil, fmt.Errorf("columnar: column %d offsets not monotonic", i)
				}
			}
			data2[i].offsets = offsets
			data2[i].payload = append([]byte(nil), payload...)
		}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &Block{schema: schema, rows: rows, cols: data2, mins: mins, maxs: maxs}, nil
}

// reader is a tiny bounds-checked cursor.
type reader struct {
	b   []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("columnar: truncated block (%d bytes at %d of %d)", n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}
