module umzi

go 1.22
