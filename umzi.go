// Package umzi is a from-scratch Go implementation of Umzi, the unified
// multi-version, multi-zone LSM-like index of IBM's Wildfire HTAP system
// ("Umzi: Unified Multi-Zone Indexing for Large-Scale HTAP", Luo et al.,
// EDBT 2019), together with the engine substrate it lives in.
//
// Two levels of API are exposed:
//
//   - The index itself (New / Open, returning *Index): an LSM-like
//     structure whose runs are divided into a groomed and a post-groomed
//     zone, merged within zones under a hybrid K/T policy, migrated
//     between zones by lock-free evolve operations, persisted in
//     append-only shared storage and cached block-by-block in a local SSD
//     cache. Queries — range scans, point lookups, sorted batches — are
//     non-blocking and multi-version (every read carries a timestamp).
//
//   - The Wildfire-style database (OpenDB, returning *DB): a
//     multi-table catalog over one shared store and SSD cache, each
//     table a *Table handle — transparently 1-shard or N-shard — with
//     multi-master transactional ingest (DB.Begin / Table.Upsert), one
//     declarative query surface (Table.Query, a fluent builder compiled
//     into point-get / index-scan / index-only / executor plans) and
//     streaming Rows results. Every read and write takes a
//     context.Context; cancellation propagates into per-shard
//     scatter-gather workers, k-way merges and block fetches.
//
// The typical application speaks to the DB layer only:
//
//	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
//	tbl, err := db.CreateTable(umzi.TableDef{
//	    Name: "orders",
//	    Columns: []umzi.TableColumn{
//	        {Name: "customer", Kind: umzi.KindInt64},
//	        {Name: "order", Kind: umzi.KindInt64},
//	        {Name: "total", Kind: umzi.KindFloat64},
//	    },
//	    PrimaryKey: []string{"customer", "order"},
//	    ShardKey:   []string{"customer"},
//	}, umzi.TableOptions{Shards: 8})
//	err = tbl.Upsert(ctx, umzi.Row{umzi.I64(7), umzi.I64(100), umzi.F64(19.99)})
//	rows, err := tbl.Query().
//	    Where(umzi.Eq("customer", umzi.I64(7))).
//	    OrderBy("order").
//	    Run(ctx)
//
// The engine-level surface (NewEngine / NewShardedEngine and their six
// query entry points) remains for existing code but is deprecated in
// favor of the DB layer.
//
// See examples/ for complete programs and DESIGN.md for the map from
// paper sections to packages.
package umzi

import (
	"umzi/internal/core"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
	"umzi/internal/wildfire"
)

// Core index API (internal/core).
type (
	// Index is one Umzi index instance serving a single table shard.
	Index = core.Index
	// Config configures an Index.
	Config = core.Config
	// IndexDef declares equality, sort and included columns (§4.1).
	IndexDef = core.IndexDef
	// Column names one indexed column.
	Column = core.Column
	// ScanOptions describes a range scan.
	ScanOptions = core.ScanOptions
	// LookupKey is one key of a batched point lookup.
	LookupKey = core.LookupKey
	// Method selects the reconciliation strategy (§7.1.2).
	Method = core.Method
	// StatsSnapshot is a copy of the index counters.
	StatsSnapshot = core.StatsSnapshot
	// Entry is one index entry (hash, key, beginTS, RID, included cols).
	Entry = run.Entry
)

// Reconciliation methods.
const (
	MethodAuto = core.MethodAuto
	MethodSet  = core.MethodSet
	MethodPQ   = core.MethodPQ
)

// New creates a fresh index; it fails if shared storage already holds an
// index under Config.Name.
func New(cfg Config) (*Index, error) { return core.New(cfg) }

// Open recovers an index from shared storage (§5.5), or creates a fresh
// one when the name is unused.
func Open(cfg Config) (*Index, error) { return core.Open(cfg) }

// Value model (internal/keyenc).
type (
	// Value is a dynamically typed column value.
	Value = keyenc.Value
	// Kind enumerates value types.
	Kind = keyenc.Kind
)

// Column kinds.
const (
	KindInt64   = keyenc.KindInt64
	KindUint64  = keyenc.KindUint64
	KindFloat64 = keyenc.KindFloat64
	KindBytes   = keyenc.KindBytes
	KindString  = keyenc.KindString
	KindBool    = keyenc.KindBool
)

// I64 returns an int64 value.
func I64(v int64) Value { return keyenc.I64(v) }

// U64 returns a uint64 value.
func U64(v uint64) Value { return keyenc.U64(v) }

// F64 returns a float64 value.
func F64(v float64) Value { return keyenc.F64(v) }

// Str returns a string value.
func Str(v string) Value { return keyenc.Str(v) }

// Raw returns a bytes value (the slice is retained, not copied).
func Raw(v []byte) Value { return keyenc.Raw(v) }

// Bool returns a bool value.
func Bool(v bool) Value { return keyenc.B(v) }

// Shared primitives (internal/types).
type (
	// TS is a multi-version timestamp; beginTS composes a groom-cycle
	// part and a commit-sequence part (§2.1).
	TS = types.TS
	// RID locates a record: zone, block ID, record offset.
	RID = types.RID
	// ZoneID identifies a data zone.
	ZoneID = types.ZoneID
	// PSN is a post-groom sequence number (§5.4).
	PSN = types.PSN
	// BlockRange is an inclusive range of groomed block IDs.
	BlockRange = types.BlockRange
)

// Zone identifiers and timestamp bounds.
const (
	ZoneLive        = types.ZoneLive
	ZoneGroomed     = types.ZoneGroomed
	ZonePostGroomed = types.ZonePostGroomed
	// MaxTS reads the newest version of everything.
	MaxTS = types.MaxTS
)

// MakeTS builds a hybrid timestamp from a groom cycle and commit sequence.
func MakeTS(groomSeq uint64, commitSeq uint32) TS { return types.MakeTS(groomSeq, commitSeq) }

// Storage hierarchy (internal/storage).
type (
	// ObjectStore is the append-only shared-storage abstraction.
	ObjectStore = storage.ObjectStore
	// MemStore is an in-memory ObjectStore with a latency model.
	MemStore = storage.MemStore
	// FSStore is a directory-backed ObjectStore.
	FSStore = storage.FSStore
	// SSDCache is the local SSD block cache (§6.2).
	SSDCache = storage.SSDCache
	// LatencyModel simulates per-tier access cost.
	LatencyModel = storage.LatencyModel
)

// NewMemStore returns an in-memory shared-storage simulator.
func NewMemStore(lat LatencyModel) *MemStore { return storage.NewMemStore(lat) }

// NewFSStore opens a directory-backed shared store (durable; used by the
// recovery example).
func NewFSStore(dir string, lat LatencyModel) (*FSStore, error) {
	return storage.NewFSStore(dir, lat)
}

// NewSSDCache returns a capacity-bounded SSD block cache. capacity 0
// means unbounded; negative disables caching.
func NewSSDCache(capacity int64, lat LatencyModel) *SSDCache {
	return storage.NewSSDCache(capacity, lat)
}

// Wildfire engine (internal/wildfire). The engine-level surface remains
// fully functional but new code should use the DB layer (OpenDB /
// CreateTable / Table.Query), which serves 1-shard and N-shard tables
// behind one API and recovers whole stores in one call.
type (
	// Engine is one Wildfire table shard: live zone, groomer,
	// post-groomer, indexer and query front end (§2.1).
	//
	// Deprecated: open tables through OpenDB / DB.CreateTable; the
	// Table handle serves the same queries via Query() with streaming
	// results and context support.
	Engine = wildfire.Engine
	// EngineConfig configures an Engine.
	//
	// Deprecated: use DBConfig + TableOptions with OpenDB.
	EngineConfig = wildfire.Config
	// TableDef defines a table: columns, primary key, sharding key,
	// partition key.
	TableDef = wildfire.TableDef
	// IndexSpec selects the index key layout over a table.
	IndexSpec = wildfire.IndexSpec
	// SecondaryIndexSpec declares a named secondary index over arbitrary
	// table columns, maintained through the whole
	// groom/post-groom/evolve pipeline alongside the primary. Pass in
	// EngineConfig/ShardedConfig.Secondaries, or build online with
	// Engine.CreateIndex / ShardedEngine.CreateIndex; query through
	// GetOn/ScanOn/IndexOnlyScanOn, or let Execute pick the index
	// automatically when a plan's predicate matches one.
	SecondaryIndexSpec = wildfire.SecondaryIndexSpec
	// Row is one table row.
	Row = wildfire.Row
	// Record is a resolved record version with its hidden columns.
	Record = wildfire.Record
	// Txn is an upsert transaction.
	//
	// Deprecated: use DB.Begin / Table.Upsert, which route across
	// tables and shards and commit with a context.
	Txn = wildfire.Txn
	// QueryOptions control snapshot and freshness semantics.
	QueryOptions = wildfire.QueryOptions
	// TableColumn describes one table column (alias of the columnar
	// package's column descriptor).
	TableColumn = wildfire.TableColumn
	// DurabilityOptions configure a table's per-shard commit log:
	// sync policy (per-commit group commit, background interval, or
	// off), target segment size and the group-commit window. Commits
	// append to the log before they are acknowledged; recovery replays
	// the log tail above the groom watermark, so with SyncPerCommit a
	// crash loses no acknowledged writes.
	DurabilityOptions = wildfire.DurabilityOptions
	// SyncPolicy selects when a commit becomes durable.
	SyncPolicy = wildfire.SyncPolicy
	// WALStatus is a snapshot of one shard's commit-log state.
	WALStatus = wildfire.WALStatus
	// BlockCacheStats is a point-in-time snapshot of a table's bounded
	// decoded-block cache (Table.BlockCacheStats): occupancy vs budget
	// and hit/miss/eviction/dedup traffic.
	BlockCacheStats = wildfire.BlockCacheStats
)

// Commit-log sync policies.
const (
	// SyncDefault resolves to SyncPerCommit.
	SyncDefault = wildfire.SyncDefault
	// SyncPerCommit acknowledges a commit only after its log records
	// are durable; concurrent committers share one segment write.
	SyncPerCommit = wildfire.SyncPerCommit
	// SyncInterval makes commits durable in the background every
	// DurabilityOptions.SyncInterval (bounded loss window).
	SyncInterval = wildfire.SyncInterval
	// SyncOff buffers the log in memory until a segment fills; crash
	// durability then starts at the last groom or segment flush.
	SyncOff = wildfire.SyncOff
)

// NewEngine creates a table-shard engine (one Umzi index instance plus
// the grooming pipeline).
//
// Deprecated: use OpenDB / DB.CreateTable with TableOptions{Shards: 1}
// (the default); the returned Table exposes the same pipeline controls
// and the unified query builder.
func NewEngine(cfg EngineConfig) (*Engine, error) { return wildfire.NewEngine(cfg) }

// Sharded multi-engine layer (internal/wildfire).
type (
	// ShardedEngine hash-partitions a table by its sharding key across N
	// independent Engines — Wildfire's "sharded multi-master" shape
	// (§2.1) — routing upserts to their owning shard and executing
	// queries as parallel scatter-gather with sort-merged results.
	//
	// Deprecated: open tables through OpenDB / DB.CreateTable with
	// TableOptions{Shards: N}; the Table handle hides the sharding
	// behind the same query surface as unsharded tables.
	ShardedEngine = wildfire.ShardedEngine
	// ShardedConfig configures a ShardedEngine.
	//
	// Deprecated: use DBConfig + TableOptions with OpenDB.
	ShardedConfig = wildfire.ShardedConfig
	// ShardedTxn is an upsert transaction routed across shards at Commit.
	//
	// Deprecated: use DB.Begin / Table.Upsert.
	ShardedTxn = wildfire.ShardedTxn
)

// NewShardedEngine creates (or recovers) a sharded engine: N table-shard
// engines behind one routing, ingest and scatter-gather query front end.
//
// Deprecated: use OpenDB / DB.CreateTable with TableOptions{Shards: N}.
func NewShardedEngine(cfg ShardedConfig) (*ShardedEngine, error) {
	return wildfire.NewShardedEngine(cfg)
}

// Analytical query executor (internal/exec): predicates, projection and
// aggregation evaluated block-at-a-time over the columnar zones, with
// block skipping by min/max synopses and partial-aggregate merging
// across shards. Build a Plan, then run it with Engine.Execute (one
// shard) or ShardedEngine.Execute (pushdown into every shard):
//
//	res, err := eng.Execute(umzi.Plan{
//	    Filter:  umzi.Ge("amount", umzi.F64(100)),
//	    GroupBy: []string{"region"},
//	    Aggs:    []umzi.Agg{{Func: umzi.AggCount}, {Func: umzi.AggSum, Col: "amount"}},
//	}, umzi.QueryOptions{IncludeLive: true})
type (
	// Plan is one analytical query: filter, projection or aggregation
	// with optional GROUP BY, and a result limit.
	Plan = exec.Plan
	// Expr is a predicate over table rows; build with Eq/Ne/Lt/Le/Gt/Ge
	// and combine with And/Or.
	Expr = exec.Expr
	// CmpOp is a comparison operator (for building predicates with Cmp).
	CmpOp = exec.CmpOp
	// Agg requests one aggregate (function, column, output name).
	Agg = exec.Agg
	// AggFunc enumerates the aggregate functions.
	AggFunc = exec.AggFunc
	// QueryResult is a finalized analytical result: column names + rows.
	QueryResult = exec.Result
)

// Aggregate functions.
const (
	AggCount = exec.Count
	AggSum   = exec.Sum
	AggMin   = exec.Min
	AggMax   = exec.Max
	AggAvg   = exec.Avg
)

// Comparison operators (for Cmp; the shorthands below cover common use).
const (
	OpEq = exec.OpEq
	OpNe = exec.OpNe
	OpLt = exec.OpLt
	OpLe = exec.OpLe
	OpGt = exec.OpGt
	OpGe = exec.OpGe
)

// Cmp builds the comparison <column> <op> <constant>.
func Cmp(col string, op CmpOp, v Value) Expr { return exec.Cmp(col, op, v) }

// Eq builds column == value.
func Eq(col string, v Value) Expr { return exec.Eq(col, v) }

// Ne builds column != value.
func Ne(col string, v Value) Expr { return exec.Ne(col, v) }

// Lt builds column < value.
func Lt(col string, v Value) Expr { return exec.Lt(col, v) }

// Le builds column <= value.
func Le(col string, v Value) Expr { return exec.Le(col, v) }

// Gt builds column > value.
func Gt(col string, v Value) Expr { return exec.Gt(col, v) }

// Ge builds column >= value.
func Ge(col string, v Value) Expr { return exec.Ge(col, v) }

// And builds the conjunction of the operands.
func And(kids ...Expr) Expr { return exec.And(kids...) }

// Or builds the disjunction of the operands.
func Or(kids ...Expr) Expr { return exec.Or(kids...) }
