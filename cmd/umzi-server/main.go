// Command umzi-server serves one umzi.DB over TCP with the umzi wire
// protocol: streamed queries, transactional commits, DDL, per-tenant
// token auth, and write admission control driven by the engine's own
// backpressure gauges. An optional HTTP admin port exposes metrics.
//
//	umzi-server -addr 127.0.0.1:7777 -admin 127.0.0.1:7778 \
//	    -dir /var/lib/umzi -token analytics=s3cret -max-wal-lag 4096
//
// SIGINT/SIGTERM shut the server down cleanly: listeners close,
// in-flight queries cancel, connections drain, the DB closes, exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
)

const version = "umzi-server/1.0"

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7777", "TCP listen address (use :0 for an ephemeral port)")
		admin    = flag.String("admin", "", "HTTP admin listen address for /metrics and /healthz (empty = off)")
		dir      = flag.String("dir", "", "data directory for the shared store (empty = in-memory, volatile)")
		maxConns = flag.Int("max-conns", 256, "maximum simultaneously served connections")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		selftest = flag.Bool("selftest", false, "boot an in-memory server, run a client round-trip against it, and exit")

		groomEvery     = flag.Duration("groom-every", 100*time.Millisecond, "background groom cadence (0 = manual)")
		postGroomEvery = flag.Duration("postgroom-every", 10*time.Second, "background post-groom cadence (0 = manual)")

		maxWALLag    = flag.Int64("max-wal-lag", 0, "admission: per-table wal_watermark_lag ceiling (0 = off)")
		maxLiveRecs  = flag.Int64("max-live-records", 0, "admission: per-table live_records ceiling (0 = off)")
		queueWrites  = flag.Bool("queue-writes", false, "admission: queue over-threshold writes instead of rejecting")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "admission: bound on one queued write's wait")
	)
	tokens := map[string]string{}
	flag.Func("token", "tenant=token auth pair (repeatable; none = open access as tenant \"public\")", func(v string) error {
		tenant, token, ok := strings.Cut(v, "=")
		if !ok || tenant == "" || token == "" {
			return fmt.Errorf("want tenant=token, got %q", v)
		}
		tokens[token] = tenant
		return nil
	})
	flag.Parse()

	if err := run(runConfig{
		addr: *addr, admin: *admin, dir: *dir, maxConns: *maxConns,
		addrFile: *addrFile, selftest: *selftest, tokens: tokens,
		groomEvery: *groomEvery, postGroomEvery: *postGroomEvery,
		admission: server.AdmissionConfig{
			MaxWALLag:      *maxWALLag,
			MaxLiveRecords: *maxLiveRecs,
			Queue:          *queueWrites,
			QueueTimeout:   *queueTimeout,
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "umzi-server:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr, admin, dir, addrFile string
	maxConns                   int
	selftest                   bool
	tokens                     map[string]string
	groomEvery, postGroomEvery time.Duration
	admission                  server.AdmissionConfig
}

func run(rc runConfig) error {
	var store umzi.ObjectStore
	if rc.dir != "" {
		fs, err := umzi.NewFSStore(rc.dir, umzi.LatencyModel{})
		if err != nil {
			return fmt.Errorf("opening store at %s: %w", rc.dir, err)
		}
		store = fs
	} else {
		store = umzi.NewMemStore(umzi.LatencyModel{})
	}
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store:          store,
		GroomEvery:     rc.groomEvery,
		PostGroomEvery: rc.postGroomEvery,
	})
	if err != nil {
		return fmt.Errorf("opening db: %w", err)
	}
	defer db.Close()

	srv, err := server.New(server.Config{
		DB:        db,
		Addr:      rc.addr,
		AdminAddr: rc.admin,
		Tokens:    rc.tokens,
		MaxConns:  rc.maxConns,
		Version:   version,
		Admission: rc.admission,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", rc.addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	announce(srv, ln.Addr().String(), rc.addrFile)

	if rc.selftest {
		if err := runSelftest(ln.Addr().String(), rc.tokens); err != nil {
			srv.Close()
			return fmt.Errorf("selftest: %w", err)
		}
		fmt.Println("selftest ok")
		return shutdown(srv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "umzi-server: %v: shutting down\n", s)
		return shutdown(srv)
	case err := <-serveErr:
		return err
	}
}

func announce(srv *server.Server, addr, addrFile string) {
	fmt.Fprintf(os.Stderr, "umzi-server: listening on %s", addr)
	if a := srv.AdminAddr(); a != "" {
		fmt.Fprintf(os.Stderr, " (admin %s)", a)
	}
	fmt.Fprintln(os.Stderr)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(addr), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "umzi-server: writing %s: %v\n", addrFile, err)
		}
	}
}

func shutdown(srv *server.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// runSelftest drives one end-to-end round-trip through the running
// server with the public client: create a table, commit rows, stream
// them back, cancel a stream mid-flight.
func runSelftest(addr string, tokens map[string]string) error {
	token := ""
	for t := range tokens {
		token = t
		break
	}
	cdb, err := client.Open(client.Config{Addr: addr, Token: token})
	if err != nil {
		return err
	}
	defer cdb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cdb.Ping(ctx); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	tbl, err := cdb.CreateTable(ctx, umzi.TableDef{
		Name:       "selftest",
		Columns:    []umzi.TableColumn{{Name: "k", Kind: umzi.KindInt64}, {Name: "v", Kind: umzi.KindString}},
		PrimaryKey: []string{"k"},
	}, client.TableOptions{})
	if err != nil {
		return fmt.Errorf("create table: %w", err)
	}
	for i := 0; i < 100; i++ {
		if err := tbl.Upsert(ctx, umzi.Row{umzi.I64(int64(i)), umzi.Str(fmt.Sprintf("v%03d", i))}); err != nil {
			return fmt.Errorf("upsert: %w", err)
		}
	}
	rows, err := tbl.Query().Where(umzi.Ge("k", umzi.I64(90))).IncludeLive().Run(ctx)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if n != 10 {
		return fmt.Errorf("queried %d rows, want 10", n)
	}
	// Early close: the cancel path must leave the connection reusable.
	rows, err = tbl.Query().IncludeLive().Run(ctx)
	if err != nil {
		return fmt.Errorf("query 2: %w", err)
	}
	rows.Next()
	if err := rows.Close(); err != nil {
		return fmt.Errorf("early close: %w", err)
	}
	if err := cdb.Ping(ctx); err != nil {
		return fmt.Errorf("ping after cancel: %w", err)
	}
	return nil
}
