// Command umzi-bench regenerates the experimental evaluation of the Umzi
// paper (EDBT 2019, §8): Figures 8 through 15 plus the ablation studies
// listed in DESIGN.md. Numbers are normalized the same way the paper
// normalizes them, so the printed tables compare directly against the
// published curves.
//
// Usage:
//
//	umzi-bench -list
//	umzi-bench -figure 8            # one figure at the default scale
//	umzi-bench -figure all          # everything
//	umzi-bench -figure 9 -scale paper
//	umzi-bench -figure a1           # ablation A1 (offset array)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"umzi/internal/bench"
)

type driver struct {
	key  string
	name string
	run  func(bench.Scale) (*bench.Result, error)
}

func drivers() []driver {
	return []driver{
		{"8", "Figure 8: index build time vs run size", bench.Fig08IndexBuild},
		{"9", "Figure 9: single-run query performance", bench.Fig09SingleRun},
		{"10", "Figure 10: multi-run queries, sequential ingestion", bench.Fig10MultiRunSeq},
		{"11", "Figure 11: multi-run queries, random ingestion", bench.Fig11MultiRunRand},
		{"12", "Figure 12: concurrent readers", bench.Fig12ConcurrentReaders},
		{"13", "Figure 13: update-rate sweep", bench.Fig13UpdateRates},
		{"14", "Figure 14: purge levels", bench.Fig14PurgeLevels},
		{"15", "Figure 15: index evolve on/off", bench.Fig15Evolve},
		{"s1", "Figure S1: scatter-gather shard scaling (extension)", bench.FigS1ShardScaling},
		{"s2", "Figure S2: unified query surface vs legacy entry points (extension)", bench.FigS2QuerySurface},
		{"s3", "Figure S3: ingest throughput vs sync policy and group commit (extension)", bench.FigS3GroupCommit},
		{"s4", "Figure S4: serving layer — throughput vs concurrent clients (extension)", bench.FigS4Serving},
		{"s5", "Figure S5: encoded vectorized scan vs scalar executor (extension)", bench.FigS5EncodedScan},
		{"s6", "Figure S6: intra-shard parallel scans and block cache (extension)", bench.FigS6ReadPath},
		{"a1", "Ablation A1: offset array width", bench.AblationOffsetArray},
		{"a2", "Ablation A2: set vs priority-queue reconciliation", bench.AblationReconcile},
		{"a3", "Ablation A3: synopsis pruning", bench.AblationSynopsis},
		{"a4", "Ablation A4: batched vs individual lookups", bench.AblationBatchSort},
		{"a5", "Ablation A5: merge policy knobs", bench.AblationMergePolicy},
		{"a6", "Ablation A6: non-persisted levels", bench.AblationNonPersisted},
		{"a7", "Ablation A7: aggregation pushdown vs client-side", bench.AblationAggPushdown},
		{"a8", "Ablation A8: secondary-index selection vs zone scan", bench.AblationSecondaryIndex},
	}
}

func main() {
	figure := flag.String("figure", "", "figure to run: 8..15, s1, a1..a8, or 'all'")
	scaleName := flag.String("scale", "small", "sweep scale: small | paper | tiny")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *list || *figure == "" {
		fmt.Println("available figures:")
		for _, d := range drivers() {
			fmt.Printf("  %-4s %s\n", d.key, d.name)
		}
		fmt.Println("\nrun with: umzi-bench -figure <key> [-scale small|paper|tiny]")
		if *figure == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var scale bench.Scale
	switch strings.ToLower(*scaleName) {
	case "small":
		scale = bench.SmallScale()
	case "paper":
		scale = bench.PaperScale()
	case "tiny":
		scale = bench.TinyScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|paper|tiny)\n", *scaleName)
		os.Exit(2)
	}

	want := strings.ToLower(*figure)
	var selected []driver
	for _, d := range drivers() {
		if want == "all" || want == d.key {
			selected = append(selected, d)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *figure)
		os.Exit(2)
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].key < selected[j].key })

	for _, d := range selected {
		res, err := d.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", d.name, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
	}
}
