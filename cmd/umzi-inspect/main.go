// Command umzi-inspect dumps the storage layout of a whole database, a
// table or an Umzi index from a filesystem-backed shared-storage
// directory: the multi-table DB catalog, per-table index catalogs, run
// headers (level, zone, groomed-block range, entry counts, synopsis),
// meta records, and data-block inventories. It is the debugging
// companion to the recovery procedure of §5.5 — everything it prints is
// reconstructed from shared storage alone.
//
// Usage:
//
//	umzi-inspect -store /path/to/store               # the DB catalog: every table
//	umzi-inspect -store /path/to/store -table orders # one table's whole index set
//	umzi-inspect -store /path/to/store -runs idx     # decode run headers under prefix
//	umzi-inspect -store /path/to/store -objects      # raw object listing
//	umzi-inspect -store /path/to/store -metrics      # open the DB, print its metrics
//	umzi-inspect -store /path/to/store -metrics -table orders  # one table (and its shards)
//
// The default mode reads the DB catalog written by umzi.OpenDB and
// lists every table — name, shard count, index set and per-zone record
// counts. The -table mode reads one table's persisted index catalog and
// prints every index with its declared definition, evolve watermark
// (IndexedPSN, max covered groomed block) and per-zone run counts; for
// sharded tables created through the DB, per-shard tables are named
// <table>/shard-NNN.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"umzi"
	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
	"umzi/internal/wal"
	"umzi/internal/wildfire"
)

func main() {
	dir := flag.String("store", "", "filesystem shared-storage directory")
	runPrefix := flag.String("runs", "", "decode run headers under this object prefix")
	table := flag.String("table", "", "print the index set of this table")
	objects := flag.Bool("objects", false, "raw object listing instead of the DB catalog")
	metrics := flag.Bool("metrics", false, "open the DB and print its metric registry (combine with -table to filter)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: umzi-inspect -store <dir> [-table <name>] [-runs <prefix>] [-objects] [-metrics]")
		os.Exit(2)
	}
	store, err := storage.NewFSStore(*dir, storage.LatencyModel{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metrics {
		if err := inspectMetrics(store, *table); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *table != "" {
		if err := inspectTable(store, *table); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if !*objects && *runPrefix == "" {
		done, err := inspectDB(store)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if done {
			return
		}
		// No DB catalog in this store: fall through to the raw listing.
	}

	names, err := store.List(*runPrefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(names) == 0 {
		fmt.Println("no objects found")
		return
	}

	fmt.Printf("%d objects under %q:\n\n", len(names), *runPrefix)
	for _, name := range names {
		size, _ := store.Size(name)
		fmt.Printf("%-60s %8d bytes", name, size)
		if h, err := run.LoadHeader(store, name); err == nil {
			fmt.Printf("  [run: zone=%s level=%d blocks=%s entries=%d datablocks=%d psn=%d",
				h.Meta.Zone, h.Meta.Level, h.Meta.Blocks, h.Entries, len(h.BlockIndex), h.Meta.PSN)
			if len(h.Meta.Ancestors) > 0 {
				fmt.Printf(" ancestors=%d", len(h.Meta.Ancestors))
			}
			fmt.Print("]")
			if verboseSynopsis(h) != "" {
				fmt.Printf("\n%s", verboseSynopsis(h))
			}
		}
		fmt.Println()
	}
}

// inspectMetrics opens the DB from the store (recovering every table)
// and renders its metric registry as an aligned table, optionally
// filtered to one table and its shards. Gauges reflect the durable
// state just recovered — log segments and bytes, watermark lag, the
// replayed live zone; counters reflect activity of this inspecting
// process only (recovery replays, no queries), since counters live in
// engine memory, not in storage.
func inspectMetrics(store storage.ObjectStore, tableFilter string) error {
	db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Println("(gauges reflect the recovered durable state; counters reflect this inspection process only)")
	fmt.Print(db.MetricsText(tableFilter))
	printReadPathSummary(db, tableFilter)
	return nil
}

// printReadPathSummary condenses the read-path metric families into one
// block per table: decoded-block cache occupancy against its byte
// budget and the hit ratio, plus the server statement cache when a
// server shares this registry (umzi-inspect opens the DB without one,
// so the statement-cache line appears only behind a live server's
// metrics endpoint or in embedding processes).
func printReadPathSummary(db *umzi.DB, tableFilter string) {
	fmt.Println("\nread path:")
	for _, name := range db.Tables() {
		if tableFilter != "" && name != tableFilter {
			continue
		}
		tbl, err := db.Table(name)
		if err != nil {
			continue
		}
		st := tbl.BlockCacheStats()
		fmt.Printf("  %-12s block cache %d / %d bytes (%.1f%% of budget), %d blocks resident\n",
			name, st.Bytes, st.Budget, 100*float64(st.Bytes)/float64(st.Budget), st.Blocks)
		lookups := st.Hits + st.Misses
		ratio := 0.0
		if lookups > 0 {
			ratio = 100 * float64(st.Hits) / float64(lookups)
		}
		fmt.Printf("  %-12s %d hits / %d misses (%.1f%% hit ratio), %d evictions, %d dedup'd fetches\n",
			"", st.Hits, st.Misses, ratio, st.Evictions, st.Dedups)
	}
	snap := db.Metrics()
	if m := snap.Get("server_stmt_cache_hits", nil); m != nil {
		hits := m.Value
		misses := snap.Sum("server_stmt_cache_misses", nil)
		entries := snap.Sum("server_stmt_cache_entries", nil)
		ratio := 0.0
		if hits+misses > 0 {
			ratio = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("  %-12s statement cache %d entries, %d hits / %d misses (%.1f%% hit ratio)\n",
			"(server)", entries, hits, misses, ratio)
	} else {
		fmt.Println("  (statement-cache metrics appear when a umzi-server shares this registry)")
	}
}

// inspectDB reads the multi-table DB catalog and lists every table:
// name, shard count, index set and per-zone record counts summed over
// the shards' data blocks. Returns done=false when the store holds no
// DB catalog (the caller falls back to the raw object listing).
func inspectDB(store storage.ObjectStore) (bool, error) {
	tables, err := umzi.InspectDBCatalog(store)
	if err != nil {
		return false, err
	}
	if len(tables) == 0 {
		return false, nil
	}
	fmt.Printf("db catalog: %d tables\n", len(tables))
	for _, tbl := range tables {
		fmt.Printf("\n%s (%d shards)\n", tbl.Def.Name, tbl.Shards)
		var cols []string
		for _, c := range tbl.Def.Columns {
			cols = append(cols, fmt.Sprintf("%s:%v", c.Name, c.Kind))
		}
		fmt.Printf("  columns:     %s\n", strings.Join(cols, ", "))
		fmt.Printf("  primary key: %v  shard key: %v", tbl.Def.PrimaryKey, tbl.Def.ShardKey)
		if tbl.Def.PartitionKey != "" {
			fmt.Printf("  partition key: %s", tbl.Def.PartitionKey)
		}
		fmt.Println()
		fmt.Printf("  primary index: equality=%v sort=%v included=%v\n",
			tbl.Index.Equality, tbl.Index.Sort, tbl.Index.Included)

		// Read-path configuration as persisted in the catalog; zeros mean
		// the engine derives the value at open (GOMAXPROCS workers, the
		// default cache budget).
		cacheDesc := "default"
		if tbl.BlockCacheBytes > 0 {
			cacheDesc = fmt.Sprintf("%d bytes", tbl.BlockCacheBytes)
		}
		scanDesc := "auto (GOMAXPROCS/shards)"
		if tbl.ScanParallelism > 0 {
			scanDesc = fmt.Sprintf("%d workers/shard", tbl.ScanParallelism)
		}
		fmt.Printf("  read path:     block cache budget %s, scan parallelism %s\n", cacheDesc, scanDesc)

		// Index set and record counts, summed across the shards.
		var groomedRows, postRows uint64
		var groomedBlocks, postBlocks int
		indexNames := map[string]bool{}
		for shard := 0; shard < tbl.Shards; shard++ {
			name := umzi.ShardTableName(tbl.Def.Name, tbl.Shards, shard)
			catalog, _, err := wildfire.LoadIndexCatalog(store, name)
			if err != nil {
				return false, err
			}
			for _, e := range catalog {
				if e.Name != "" {
					indexNames[e.Name] = true
				}
			}
			for _, zone := range []string{"groomed", "post"} {
				blocks, err := store.List("tbl/" + name + "/" + zone + "/")
				if err != nil {
					return false, err
				}
				for _, b := range blocks {
					data, err := store.Get(b)
					if err != nil {
						return false, err
					}
					blk, err := columnar.Unmarshal(data)
					if err != nil {
						continue // interrupted write
					}
					if zone == "groomed" {
						groomedRows += uint64(blk.NumRows())
						groomedBlocks++
					} else {
						postRows += uint64(blk.NumRows())
						postBlocks++
					}
				}
			}
		}
		var secondaries []string
		for n := range indexNames {
			secondaries = append(secondaries, n)
		}
		sort.Strings(secondaries)
		if len(secondaries) > 0 {
			fmt.Printf("  secondaries:   %s\n", strings.Join(secondaries, ", "))
		}
		fmt.Printf("  record versions: %d groomed (%d blocks, pending post-groom), %d post-groomed (%d blocks)\n",
			groomedRows, groomedBlocks, postRows, postBlocks)

		// Commit-log summary across the shards: durable segments, the
		// groom watermark vs the largest logged sequence, and the replay
		// tail a crash would rebuild into the live zone.
		var segCount, tailRows int
		var segBytes int64
		for shard := 0; shard < tbl.Shards; shard++ {
			name := umzi.ShardTableName(tbl.Def.Name, tbl.Shards, shard)
			w, err := walSummary(store, name)
			if err != nil {
				return false, err
			}
			segCount += w.segments
			segBytes += w.bytes
			tailRows += w.tailRows
		}
		fmt.Printf("  commit log:    %d segments (%d bytes), replay tail %d rows across %d shards\n",
			segCount, segBytes, tailRows, tbl.Shards)
	}
	fmt.Println("\n(use -table <name> for one table's full index set; sharded tables are <name>/shard-NNN)")
	return true, nil
}

// inspectTable prints the full index set of one table: the catalog's
// declared definitions plus, per index, the evolve watermark and the
// per-zone run inventory — everything reconstructed from shared storage
// alone, like the recovery procedure of §5.5.
func inspectTable(store storage.ObjectStore, table string) error {
	catalog, _, err := wildfire.LoadIndexCatalog(store, table)
	if err != nil {
		return err
	}
	if catalog == nil {
		return fmt.Errorf("table %q has no index catalog in this store", table)
	}
	fmt.Printf("table %s: %d indexes\n", table, len(catalog))

	// Commit-log view of this shard: segment inventory, groom watermark
	// vs the largest logged sequence, and the replay tail.
	w, err := walSummary(store, table)
	if err != nil {
		return err
	}
	fmt.Printf("\ncommit log (%s/)\n", wildfire.WALStoragePrefix(table))
	if w.hasMark {
		fmt.Printf("  groom watermark: seq %d (groom cycle %d)\n", w.mark, w.markCycle)
	} else {
		fmt.Printf("  groom watermark: none persisted (nothing groomed since the log began)\n")
	}
	fmt.Printf("  segments:        %d (%d bytes)\n", w.segments, w.bytes)
	fmt.Printf("  max logged seq:  %d\n", w.maxSeq)
	fmt.Printf("  replay tail:     %d rows (rebuilt into the live zone on reopen)\n", w.tailRows)
	// Data-block inventory: physical encodings, bloom filters, and the
	// on-store footprint of each block against the plain (version-1)
	// layout of the same rows.
	for _, zone := range []string{"groomed", "post"} {
		prefix := fmt.Sprintf("tbl/%s/%s/", table, zone)
		blocks, err := store.List(prefix)
		if err != nil {
			return err
		}
		if len(blocks) == 0 {
			continue
		}
		fmt.Printf("\n%s data blocks (%s)\n", zone, prefix)
		var totEnc, totPlain int
		for _, bname := range blocks {
			data, err := store.Get(bname)
			if err != nil {
				return err
			}
			blk, err := columnar.Unmarshal(data)
			if err != nil {
				fmt.Printf("  %-24s unreadable (interrupted write?): %v\n", strings.TrimPrefix(bname, prefix), err)
				continue
			}
			plain := blk.PlainSize()
			totEnc += len(data)
			totPlain += plain
			fmt.Printf("  %-24s %6d rows  %8d bytes on store (plain layout %d, %.1f%%)\n",
				strings.TrimPrefix(bname, prefix), blk.NumRows(), len(data), plain,
				100*float64(len(data))/float64(plain))
			var cols []string
			for c := 0; c < blk.Schema().NumCols(); c++ {
				desc := fmt.Sprintf("%s=%v", blk.Schema().Col(c).Name, blk.ColumnEncoding(c))
				if blk.HasBloom(c) {
					desc += "+bloom"
				}
				cols = append(cols, desc)
			}
			fmt.Printf("    %s\n", strings.Join(cols, " "))
		}
		if totPlain > 0 {
			fmt.Printf("  total: %d bytes encoded vs %d plain layout (%.1f%%)\n",
				totEnc, totPlain, 100*float64(totEnc)/float64(totPlain))
		}
	}

	for _, entry := range catalog {
		name := entry.Name
		label := name
		if label == "" {
			label = "(primary)"
		}
		prefix := wildfire.IndexStoragePrefix(table, name)
		fmt.Printf("\n%s\n", label)
		fmt.Printf("  definition: equality=%v sort=%v included=%v hashbits=%d\n",
			entry.Spec.Equality, entry.Spec.Sort, entry.Spec.Included, entry.Spec.HashBits)
		if name != "" {
			fmt.Printf("  (secondaries append the missing primary-key columns to the sort key as a uniquifier)\n")
		}

		maxCovered, psn, ok, err := core.InspectMeta(store, prefix)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("  watermark:  IndexedPSN=%d maxCoveredGroomedBlock=%d\n", psn, maxCovered)
		} else {
			fmt.Printf("  watermark:  no meta record (no evolve applied yet)\n")
		}

		names, err := store.List(prefix + "/z")
		if err != nil {
			return err
		}
		counts := map[types.ZoneID]int{}
		entriesPerZone := map[types.ZoneID]uint64{}
		for _, n := range names {
			h, err := run.LoadHeader(store, n)
			if err != nil {
				continue // meta records and interrupted writes
			}
			counts[h.Meta.Zone]++
			entriesPerZone[h.Meta.Zone] += h.Entries
		}
		fmt.Printf("  runs:       groomed=%d (%d entries), post-groomed=%d (%d entries)\n",
			counts[types.ZoneGroomed], entriesPerZone[types.ZoneGroomed],
			counts[types.ZonePostGroomed], entriesPerZone[types.ZonePostGroomed])
	}
	return nil
}

// walView summarizes one table shard's commit log from storage alone.
type walView struct {
	segments  int
	bytes     int64
	mark      uint64
	markCycle uint64
	hasMark   bool
	maxSeq    uint64
	tailRows  int
}

func walSummary(store storage.ObjectStore, table string) (walView, error) {
	var v walView
	mark, cycle, _, ok, err := wildfire.LoadWALMark(store, table)
	if err != nil {
		return v, err
	}
	v.mark, v.markCycle, v.hasMark = mark, cycle, ok
	v.maxSeq = mark
	segs, err := wal.Inspect(store, wildfire.WALStoragePrefix(table))
	if err != nil {
		return v, err
	}
	for _, s := range segs {
		v.segments++
		v.bytes += s.Bytes
		if s.Last > v.maxSeq {
			v.maxSeq = s.Last
		}
	}
	v.tailRows, err = wal.TailRowsIn(store, segs, mark)
	return v, err
}

func verboseSynopsis(h *run.Header) string {
	var b strings.Builder
	for i := range h.SynMin {
		if h.SynMin[i] == nil {
			continue
		}
		fmt.Fprintf(&b, "    key col %d synopsis: min=%x max=%x\n", i, h.SynMin[i], h.SynMax[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
