// Command umzi-inspect dumps the storage layout of an Umzi index or a
// whole Wildfire table from a filesystem-backed shared-storage directory:
// run headers (level, zone, groomed-block range, entry counts, synopsis),
// meta records, and data-block inventories. It is the debugging companion
// to the recovery procedure of §5.5 — everything it prints is
// reconstructed from shared storage alone.
//
// Usage:
//
//	umzi-inspect -store /path/to/store               # list everything
//	umzi-inspect -store /path/to/store -runs idx     # decode run headers under prefix
//	umzi-inspect -store /path/to/store -table orders # the table's whole index set
//
// The -table mode reads the persisted index catalog and prints every
// index of the table — primary and secondaries — with its declared
// definition, evolve watermark (IndexedPSN, max covered groomed block)
// and per-zone run counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"umzi/internal/core"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
	"umzi/internal/wildfire"
)

func main() {
	dir := flag.String("store", "", "filesystem shared-storage directory")
	runPrefix := flag.String("runs", "", "decode run headers under this object prefix")
	table := flag.String("table", "", "print the index set of this table")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: umzi-inspect -store <dir> [-runs <prefix>] [-table <name>]")
		os.Exit(2)
	}
	store, err := storage.NewFSStore(*dir, storage.LatencyModel{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *table != "" {
		if err := inspectTable(store, *table); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	names, err := store.List(*runPrefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(names) == 0 {
		fmt.Println("no objects found")
		return
	}

	fmt.Printf("%d objects under %q:\n\n", len(names), *runPrefix)
	for _, name := range names {
		size, _ := store.Size(name)
		fmt.Printf("%-60s %8d bytes", name, size)
		if h, err := run.LoadHeader(store, name); err == nil {
			fmt.Printf("  [run: zone=%s level=%d blocks=%s entries=%d datablocks=%d psn=%d",
				h.Meta.Zone, h.Meta.Level, h.Meta.Blocks, h.Entries, len(h.BlockIndex), h.Meta.PSN)
			if len(h.Meta.Ancestors) > 0 {
				fmt.Printf(" ancestors=%d", len(h.Meta.Ancestors))
			}
			fmt.Print("]")
			if verboseSynopsis(h) != "" {
				fmt.Printf("\n%s", verboseSynopsis(h))
			}
		}
		fmt.Println()
	}
}

// inspectTable prints the full index set of one table: the catalog's
// declared definitions plus, per index, the evolve watermark and the
// per-zone run inventory — everything reconstructed from shared storage
// alone, like the recovery procedure of §5.5.
func inspectTable(store storage.ObjectStore, table string) error {
	catalog, _, err := wildfire.LoadIndexCatalog(store, table)
	if err != nil {
		return err
	}
	if catalog == nil {
		return fmt.Errorf("table %q has no index catalog in this store", table)
	}
	fmt.Printf("table %s: %d indexes\n", table, len(catalog))
	for _, entry := range catalog {
		name := entry.Name
		label := name
		if label == "" {
			label = "(primary)"
		}
		prefix := wildfire.IndexStoragePrefix(table, name)
		fmt.Printf("\n%s\n", label)
		fmt.Printf("  definition: equality=%v sort=%v included=%v hashbits=%d\n",
			entry.Spec.Equality, entry.Spec.Sort, entry.Spec.Included, entry.Spec.HashBits)
		if name != "" {
			fmt.Printf("  (secondaries append the missing primary-key columns to the sort key as a uniquifier)\n")
		}

		maxCovered, psn, ok, err := core.InspectMeta(store, prefix)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("  watermark:  IndexedPSN=%d maxCoveredGroomedBlock=%d\n", psn, maxCovered)
		} else {
			fmt.Printf("  watermark:  no meta record (no evolve applied yet)\n")
		}

		names, err := store.List(prefix + "/z")
		if err != nil {
			return err
		}
		counts := map[types.ZoneID]int{}
		entriesPerZone := map[types.ZoneID]uint64{}
		for _, n := range names {
			h, err := run.LoadHeader(store, n)
			if err != nil {
				continue // meta records and interrupted writes
			}
			counts[h.Meta.Zone]++
			entriesPerZone[h.Meta.Zone] += h.Entries
		}
		fmt.Printf("  runs:       groomed=%d (%d entries), post-groomed=%d (%d entries)\n",
			counts[types.ZoneGroomed], entriesPerZone[types.ZoneGroomed],
			counts[types.ZonePostGroomed], entriesPerZone[types.ZonePostGroomed])
	}
	return nil
}

func verboseSynopsis(h *run.Header) string {
	var b strings.Builder
	for i := range h.SynMin {
		if h.SynMin[i] == nil {
			continue
		}
		fmt.Fprintf(&b, "    key col %d synopsis: min=%x max=%x\n", i, h.SynMin[i], h.SynMax[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
