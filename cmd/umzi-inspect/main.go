// Command umzi-inspect dumps the storage layout of an Umzi index or a
// whole Wildfire table from a filesystem-backed shared-storage directory:
// run headers (level, zone, groomed-block range, entry counts, synopsis),
// meta records, and data-block inventories. It is the debugging companion
// to the recovery procedure of §5.5 — everything it prints is
// reconstructed from shared storage alone.
//
// Usage:
//
//	umzi-inspect -store /path/to/store            # list everything
//	umzi-inspect -store /path/to/store -runs idx  # decode run headers under prefix
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"umzi/internal/run"
	"umzi/internal/storage"
)

func main() {
	dir := flag.String("store", "", "filesystem shared-storage directory")
	runPrefix := flag.String("runs", "", "decode run headers under this object prefix")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: umzi-inspect -store <dir> [-runs <prefix>]")
		os.Exit(2)
	}
	store, err := storage.NewFSStore(*dir, storage.LatencyModel{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	names, err := store.List(*runPrefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(names) == 0 {
		fmt.Println("no objects found")
		return
	}

	fmt.Printf("%d objects under %q:\n\n", len(names), *runPrefix)
	for _, name := range names {
		size, _ := store.Size(name)
		fmt.Printf("%-60s %8d bytes", name, size)
		if h, err := run.LoadHeader(store, name); err == nil {
			fmt.Printf("  [run: zone=%s level=%d blocks=%s entries=%d datablocks=%d psn=%d",
				h.Meta.Zone, h.Meta.Level, h.Meta.Blocks, h.Entries, len(h.BlockIndex), h.Meta.PSN)
			if len(h.Meta.Ancestors) > 0 {
				fmt.Printf(" ancestors=%d", len(h.Meta.Ancestors))
			}
			fmt.Print("]")
			if verboseSynopsis(h) != "" {
				fmt.Printf("\n%s", verboseSynopsis(h))
			}
		}
		fmt.Println()
	}
}

func verboseSynopsis(h *run.Header) string {
	var b strings.Builder
	for i := range h.SynMin {
		if h.SynMin[i] == nil {
			continue
		}
		fmt.Fprintf(&b, "    key col %d synopsis: min=%x max=%x\n", i, h.SynMin[i], h.SynMax[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
