// Command umzi-workload runs registered HTAP scenarios against an
// in-process umzi.DB. Scenarios self-register by name (the package and
// function that implement them) and declare attributes — read-heavy,
// write-heavy, crash-injecting, long-running — that drive selection.
// Results go to stdout as one JSON report: pass/fail per scenario with
// recorded failures, latency percentiles per operation class, and
// snapshot-freshness percentiles where a scenario probes them.
//
// Usage:
//
//	umzi-workload -list
//	umzi-workload -run htap.OrderAnalytics
//	umzi-workload -attr read-heavy,write-heavy      # OR of attributes
//	umzi-workload -attr 'write-heavy&!crash-injecting'
//	umzi-workload -attr crash-injecting -scale 2 -seed 7 -v
//	umzi-workload -remote 127.0.0.1:7777 -token s3cret -run server.SlowConsumer
//
// Exit status is 0 when every selected scenario passes, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"umzi/internal/workload"
	_ "umzi/internal/workload/scenarios/all"
)

func main() {
	list := flag.Bool("list", false, "list registered scenarios and exit")
	run := flag.String("run", "", "run exactly these comma-separated scenario names")
	attr := flag.String("attr", "", "run scenarios matching this attribute expression (comma=OR, '&'=AND, '!'=NOT)")
	scale := flag.Int("scale", 1, "load multiplier (>= 1)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	timeout := flag.Duration("timeout", 0, "override every scenario's timeout (0 keeps per-scenario defaults)")
	verbose := flag.Bool("v", false, "log scenario progress to stderr")
	remote := flag.String("remote", "", "umzi-server addr:port for remote scenarios (empty skips them)")
	token := flag.String("token", "", "auth token for -remote connections")
	blockCache := flag.Int64("block-cache-bytes", 0, "decoded-block cache budget for scenario DBs (0 keeps the default; small values force eviction churn)")
	flag.Parse()

	if *list {
		for _, s := range workload.Scenarios() {
			fmt.Printf("%-24s [%s] %s\n", s.Name(), strings.Join(s.Attrs, ","), s.Desc)
		}
		return
	}
	if *run != "" && *attr != "" {
		fmt.Fprintln(os.Stderr, "umzi-workload: -run and -attr are mutually exclusive")
		os.Exit(2)
	}

	var scenarios []*workload.Scenario
	selection := *attr
	switch {
	case *run != "":
		selection = *run
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			s, ok := workload.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "umzi-workload: unknown scenario %q (see -list)\n", name)
				os.Exit(2)
			}
			scenarios = append(scenarios, s)
		}
	default:
		var err error
		scenarios, err = workload.Select(*attr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umzi-workload: %v\n", err)
			os.Exit(2)
		}
		if *remote == "" {
			// Remote scenarios need a server; without -remote they are
			// skipped, not failed (explicit -run still forces them).
			kept := scenarios[:0]
			for _, s := range scenarios {
				if hasAttr(s, workload.AttrRemote) {
					fmt.Fprintf(os.Stderr, "umzi-workload: skipping %s (needs -remote)\n", s.Name())
					continue
				}
				kept = append(kept, s)
			}
			scenarios = kept
		}
	}
	if len(scenarios) == 0 {
		fmt.Fprintf(os.Stderr, "umzi-workload: no scenarios match %q\n", selection)
		os.Exit(2)
	}

	opts := workload.RunOptions{
		Scale:           *scale,
		Seed:            *seed,
		Timeout:         *timeout,
		RemoteAddr:      *remote,
		RemoteToken:     *token,
		BlockCacheBytes: *blockCache,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05.000 ")+format+"\n", args...)
		}
	}

	rep := workload.Run(scenarios, opts, selection)
	fmt.Fprint(os.Stderr, workload.FormatSummary(rep))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "umzi-workload: encode report: %v\n", err)
		os.Exit(1)
	}
	if !rep.Passed {
		os.Exit(1)
	}
}

func hasAttr(s *workload.Scenario, attr string) bool {
	for _, a := range s.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}
