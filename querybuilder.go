package umzi

import (
	"context"
	"fmt"

	"umzi/internal/obs"
	"umzi/internal/wildfire"
)

// Query is the one query surface of a Table: a fluent builder compiled
// at Run into the cheapest access path that serves it — point get,
// index scan, index-only scan, or a pushed-down executor plan — by the
// planner in internal/wildfire. It replaces the six entry points of the
// deprecated engine surface (Get/Scan/GetOn/ScanOn/IndexOnlyScanOn/
// Execute): the predicate goes into Where, and the planner makes the
// access-path decision those entry points forced onto the caller.
//
//	rows, err := tbl.Query().
//	    Where(umzi.Eq("customer", umzi.I64(7))).
//	    Select("order", "total").
//	    OrderBy("order").
//	    Limit(100).
//	    Run(ctx)
//
// Builders are single-use and not safe for concurrent use; each method
// returns the receiver for chaining.
type Query struct {
	tbl  *Table
	spec wildfire.QuerySpec
}

// Where filters rows by a predicate (build with Eq/Lt/.../And/Or).
// Multiple calls AND their predicates.
func (q *Query) Where(e Expr) *Query {
	if q.spec.Filter == nil {
		q.spec.Filter = e
	} else {
		q.spec.Filter = And(q.spec.Filter, e)
	}
	return q
}

// Select projects the result to the named columns (default: all table
// columns). Row queries only; aggregate output is GroupBy + Aggs.
func (q *Query) Select(cols ...string) *Query {
	q.spec.Columns = cols
	return q
}

// OrderBy asks for rows ordered by the named columns. Order is served
// from an index whose sort columns start with them (and whose equality
// columns the filter pins); Run fails when no index qualifies. Without
// OrderBy, row-query results come in the executor's deterministic
// encoded-value order.
func (q *Query) OrderBy(cols ...string) *Query {
	q.spec.OrderBy = cols
	return q
}

// GroupBy groups an aggregate query by the named columns.
func (q *Query) GroupBy(cols ...string) *Query {
	q.spec.GroupBy = cols
	return q
}

// Aggs requests aggregates; the result carries one row per group
// (GroupBy values first, then one value per aggregate), ordered by
// group key.
func (q *Query) Aggs(aggs ...Agg) *Query {
	q.spec.Aggs = append(q.spec.Aggs, aggs...)
	return q
}

// Limit caps the result rows; 0 means unlimited. The limit is pushed
// into per-shard scans and stops the scatter-gather merge early.
func (q *Query) Limit(n int) *Query {
	q.spec.Limit = n
	return q
}

// At pins the snapshot timestamp (time travel); zero reads the newest
// groomed snapshot.
func (q *Query) At(ts TS) *Query {
	q.spec.TS = ts
	return q
}

// Via forces the named index ("" is the primary) instead of letting the
// planner choose; the filter must pin the index's equality columns.
func (q *Query) Via(index string) *Query {
	q.spec.Via = index
	q.spec.ViaSet = true
	return q
}

// IncludeLive unions committed-but-ungroomed records into point gets
// and executor plans, trading latency for freshness. Index-ordered
// scans (OrderBy / Via) serve the indexed zones only.
func (q *Query) IncludeLive() *Query {
	q.spec.IncludeLive = true
	return q
}

// NoIndex forces executor plans to scan the columnar zones even when
// the filter matches an index (baselines, ablations).
func (q *Query) NoIndex() *Query {
	q.spec.NoIndexSelection = true
	return q
}

// Explain attaches a trace to the query and returns it. Run the query,
// then read the trace: the compiled plan choice, per-shard spans,
// blocks read vs. synopsis-skipped, live-union sizes, back-check counts
// and rows emitted. The trace settles as the result streams — drain or
// close the Rows before reading totals. Calling Explain again returns
// the same trace.
//
//	tr := q.Explain()
//	rows, err := q.Run(ctx)
//	... drain rows ...
//	fmt.Println(tr)
func (q *Query) Explain() *QueryTrace {
	if q.spec.Trace == nil {
		q.spec.Trace = obs.NewQueryTrace()
	}
	return q.spec.Trace
}

// Run compiles the query and starts it, returning a streaming Rows
// cursor. The context governs the whole result lifetime: cancelling it
// — or closing the Rows early — stops per-shard workers, k-way merging
// and block fetches.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	return q.tbl.RunSpec(ctx, q.spec)
}

// All runs the query and materializes every row — a convenience for
// small results; prefer Run for large ones.
func (q *Query) All(ctx context.Context) ([][]Value, error) {
	rows, err := q.Run(ctx)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out [][]Value
	for rows.Next() {
		out = append(out, append([]Value(nil), rows.Values()...))
	}
	return out, rows.Err()
}

// One runs the query and returns its first row, with found=false when
// the result is empty.
func (q *Query) One(ctx context.Context) ([]Value, bool, error) {
	rows, err := q.Limit(1).Run(ctx)
	if err != nil {
		return nil, false, err
	}
	defer rows.Close()
	if !rows.Next() {
		return nil, false, rows.Err()
	}
	return append([]Value(nil), rows.Values()...), true, nil
}

// Count runs the query as COUNT(*) over its filter and returns the
// count. It cannot combine with Select/GroupBy/Aggs/OrderBy.
func (q *Query) Count(ctx context.Context) (int64, error) {
	if len(q.spec.Columns)+len(q.spec.GroupBy)+len(q.spec.Aggs)+len(q.spec.OrderBy) > 0 {
		return 0, fmt.Errorf("umzi: Count is a bare-filter convenience; build the aggregate explicitly instead")
	}
	q.spec.Aggs = []Agg{{Func: AggCount}}
	row, found, err := q.One(ctx)
	if err != nil || !found {
		return 0, err
	}
	return row[0].Int(), nil
}
