package umzi_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"umzi"
)

// Property test: every Query() builder formulation returns results
// identical to the legacy entry point it replaces — point get, primary
// index scan, secondary scan, index-only scan, aggregate — on 1-shard
// and 8-shard topologies. The builder table and the legacy engine
// ingest the same row sequence (with key collisions, i.e. updates)
// into separate stores and groom in lockstep, so every query must see
// the same reconciled multi-version state.

// legacyAPI is the deprecated query surface, satisfied by both Engine
// and ShardedEngine.
type legacyAPI interface {
	Get(eq, sortv []umzi.Value, opts umzi.QueryOptions) (umzi.Record, bool, error)
	ScanOn(index string, eq, sortLo, sortHi []umzi.Value, opts umzi.QueryOptions) ([]umzi.Record, error)
	IndexOnlyScanOn(index string, eq, sortLo, sortHi []umzi.Value, opts umzi.QueryOptions) ([][]umzi.Value, error)
	Execute(p umzi.Plan, opts umzi.QueryOptions) (*umzi.QueryResult, error)
	UpsertRows(replicaID int, rows ...umzi.Row) error
	Groom() error
	SyncIndex() error
	Close() error
}

func propTableDef() umzi.TableDef {
	return umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
			{Name: "region", Kind: umzi.KindString},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}
}

var propIndex = umzi.IndexSpec{Sort: []string{"order_id"}, Included: []string{"region"}}
var propSecondary = umzi.SecondaryIndexSpec{
	Name:      "by_customer",
	IndexSpec: umzi.IndexSpec{Equality: []string{"customer"}, Included: []string{"amount"}},
}

func valuesEqual(a, b []umzi.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			return false
		}
	}
	return true
}

func rowsEqualRecords(t *testing.T, what string, got [][]umzi.Value, want []umzi.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: builder returned %d rows, legacy %d", what, len(got), len(want))
	}
	for i := range got {
		if !valuesEqual(got[i], want[i].Row) {
			t.Fatalf("%s: row %d: builder %v, legacy %v", what, i, got[i], want[i].Row)
		}
	}
}

func TestBuilderLegacyEquivalence(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				testBuilderLegacyEquivalence(t, shards, seed)
			})
		}
	}
}

func testBuilderLegacyEquivalence(t *testing.T, shards int, seed int64) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(propTableDef(), umzi.TableOptions{
		Shards:      shards,
		Index:       propIndex,
		Secondaries: []umzi.SecondaryIndexSpec{propSecondary},
	})
	if err != nil {
		t.Fatal(err)
	}

	var legacy legacyAPI
	var postGroom func() error
	if shards == 1 {
		eng, err := umzi.NewEngine(umzi.EngineConfig{
			Table:       propTableDef(),
			Index:       propIndex,
			Secondaries: []umzi.SecondaryIndexSpec{propSecondary},
			Store:       umzi.NewMemStore(umzi.LatencyModel{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy = eng
		postGroom = func() error { _, err := eng.PostGroom(); return err }
	} else {
		eng, err := umzi.NewShardedEngine(umzi.ShardedConfig{
			Table:       propTableDef(),
			Index:       propIndex,
			Secondaries: []umzi.SecondaryIndexSpec{propSecondary},
			Shards:      shards,
			Store:       umzi.NewMemStore(umzi.LatencyModel{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy = eng
		postGroom = eng.PostGroom
	}
	defer legacy.Close()

	// Identical ingest with updates, lockstep grooming, one post-groom
	// mid-stream so the data straddles all three zones.
	const keyspace, customers = 200, 12
	regionsOf := []string{"amer", "emea", "apac", "latam"}
	n := 400 + rng.Intn(200)
	for i := 0; i < n; i++ {
		id := int64(rng.Intn(keyspace))
		row := umzi.Row{
			umzi.I64(id),
			umzi.I64(id % customers),
			umzi.F64(float64(rng.Intn(1000))),
			umzi.Str(regionsOf[rng.Intn(len(regionsOf))]),
		}
		if err := tbl.Upsert(ctx, row); err != nil {
			t.Fatal(err)
		}
		if err := legacy.UpsertRows(0, row); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(60) == 0 {
			if err := tbl.Groom(); err != nil {
				t.Fatal(err)
			}
			if err := legacy.Groom(); err != nil {
				t.Fatal(err)
			}
		}
		if i == n/2 {
			if err := tbl.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := postGroom(); err != nil {
				t.Fatal(err)
			}
			if err := tbl.SyncIndex(); err != nil {
				t.Fatal(err)
			}
			if err := legacy.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Groom(); err != nil {
		t.Fatal(err)
	}
	opts := umzi.QueryOptions{TS: umzi.MaxTS}

	// Point gets (hits and misses) vs legacy Get.
	for trial := 0; trial < 30; trial++ {
		id := int64(rng.Intn(keyspace + 20))
		row, found, err := tbl.Query().
			Where(umzi.Eq("order_id", umzi.I64(id))).
			At(umzi.MaxTS).
			One(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rec, wantFound, err := legacy.Get(nil, []umzi.Value{umzi.I64(id)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if found != wantFound {
			t.Fatalf("point get %d: builder found=%v, legacy %v", id, found, wantFound)
		}
		if found && !valuesEqual(row, rec.Row) {
			t.Fatalf("point get %d: builder %v, legacy %v", id, row, rec.Row)
		}
	}

	// Primary ordered range scans (with and without limit) vs ScanOn("").
	for trial := 0; trial < 15; trial++ {
		lo := int64(rng.Intn(keyspace))
		hi := lo + int64(rng.Intn(keyspace))
		limit := 0
		if trial%3 == 0 {
			limit = 1 + rng.Intn(20)
		}
		got, err := tbl.Query().
			Where(umzi.And(umzi.Ge("order_id", umzi.I64(lo)), umzi.Le("order_id", umzi.I64(hi)))).
			OrderBy("order_id").
			Limit(limit).
			At(umzi.MaxTS).
			All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.ScanOn("", nil, []umzi.Value{umzi.I64(lo)}, []umzi.Value{umzi.I64(hi)},
			umzi.QueryOptions{TS: umzi.MaxTS, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		rowsEqualRecords(t, fmt.Sprintf("range [%d,%d] limit %d", lo, hi, limit), got, want)
	}

	// Secondary scans via the forced index vs ScanOn.
	for cust := int64(0); cust < customers; cust++ {
		got, err := tbl.Query().
			Where(umzi.Eq("customer", umzi.I64(cust))).
			Via("by_customer").
			At(umzi.MaxTS).
			All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.ScanOn("by_customer", []umzi.Value{umzi.I64(cust)}, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqualRecords(t, fmt.Sprintf("secondary customer %d", cust), got, want)
	}

	// Covered (index-only) queries vs IndexOnlyScanOn: the secondary
	// carries customer, order_id (uniquifier) and amount.
	for cust := int64(0); cust < customers; cust++ {
		got, err := tbl.Query().
			Where(umzi.Eq("customer", umzi.I64(cust))).
			Select("customer", "order_id", "amount").
			Via("by_customer").
			At(umzi.MaxTS).
			All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.IndexOnlyScanOn("by_customer", []umzi.Value{umzi.I64(cust)}, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("index-only customer %d: builder %d rows, legacy %d", cust, len(got), len(want))
		}
		for i := range got {
			// Legacy layout: equality (customer), sort (order_id), included (amount).
			if !valuesEqual(got[i], want[i]) {
				t.Fatalf("index-only customer %d row %d: builder %v, legacy %v", cust, i, got[i], want[i])
			}
		}
	}

	// Aggregates vs Execute: filtered GROUP BY, both index-selected and
	// forced zone scan.
	for trial := 0; trial < 6; trial++ {
		minAmount := float64(rng.Intn(900))
		plan := umzi.Plan{
			Filter:  umzi.Ge("amount", umzi.F64(minAmount)),
			GroupBy: []string{"region"},
			Aggs: []umzi.Agg{
				{Func: umzi.AggCount},
				{Func: umzi.AggSum, Col: "amount"},
				{Func: umzi.AggMax, Col: "amount"},
			},
		}
		q := tbl.Query().
			Where(umzi.Ge("amount", umzi.F64(minAmount))).
			GroupBy("region").
			Aggs(umzi.Agg{Func: umzi.AggCount}, umzi.Agg{Func: umzi.AggSum, Col: "amount"}, umzi.Agg{Func: umzi.AggMax, Col: "amount"}).
			At(umzi.MaxTS)
		if trial%2 == 1 {
			q = q.NoIndex()
		}
		got, err := q.All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantOpts := opts
		wantOpts.NoIndexSelection = trial%2 == 1
		want, err := legacy.Execute(plan, wantOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Rows) {
			t.Fatalf("aggregate >= %v: builder %d groups, legacy %d", minAmount, len(got), len(want.Rows))
		}
		for i := range got {
			if !valuesEqual(got[i], want.Rows[i]) {
				t.Fatalf("aggregate >= %v group %d: builder %v, legacy %v", minAmount, i, got[i], want.Rows[i])
			}
		}
	}

	// Unordered row query vs Execute's row mode (deterministic encoded
	// order on both sides).
	sel, err := tbl.Query().
		Where(umzi.Lt("amount", umzi.F64(500))).
		Select("order_id", "amount").
		At(umzi.MaxTS).
		All(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := legacy.Execute(umzi.Plan{
		Filter:  umzi.Lt("amount", umzi.F64(500)),
		Columns: []string{"order_id", "amount"},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(wantSel.Rows) {
		t.Fatalf("row query: builder %d rows, legacy %d", len(sel), len(wantSel.Rows))
	}
	for i := range sel {
		if !valuesEqual(sel[i], wantSel.Rows[i]) {
			t.Fatalf("row query row %d: builder %v, legacy %v", i, sel[i], wantSel.Rows[i])
		}
	}
}
