package umzi

import (
	"context"
	"errors"
	"fmt"
	"math"

	"umzi/internal/keyenc"
	"umzi/internal/wildfire"
)

// ErrRange reports that Scan would have to narrow a numeric value that
// does not fit the destination (uint64 into *int64/*int, or int64 into
// *int on 32-bit platforms). Test with errors.Is.
var ErrRange = errors.New("value out of range")

// Rows is a streaming query result, styled after database/sql.Rows:
//
//	rows, err := tbl.Query().Where(...).OrderBy("seq").Run(ctx)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var seq int64
//	    var amount float64
//	    if err := rows.Scan(&seq, &amount); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Index-served queries (point gets, OrderBy/Via scans) are pulled
// lazily: per-shard scan workers, the k-way merge, verification and
// data-block fetches advance only as Next is called, and Close (or
// cancelling the Run context) stops them — the workers are cancelled
// and waited out, so an early Close leaks nothing and abandons the
// remaining work. Executor plans (aggregates, unordered row queries)
// necessarily complete their per-shard scans inside Run — partial
// aggregates cannot finalize early — and stream only the emission;
// cancellation still aborts them mid-scan.
type Rows struct {
	qr     *wildfire.QueryRows
	cancel context.CancelFunc
	closed bool
}

// Columns returns the result's column names, in row order.
func (r *Rows) Columns() []string { return r.qr.Columns }

// Next advances to the next row, reporting whether one is available.
// After Next returns false, Err distinguishes exhaustion from failure
// (including context cancellation).
func (r *Rows) Next() bool {
	if r.qr.Cursor.Next() {
		return true
	}
	// Exhaustion (or failure): the cursor has auto-closed; release the
	// Run-level context too, so a fully drained Rows leaks nothing even
	// when the caller skips Close. Marking the result closed keeps a
	// later Close from re-entering qr.Close after the cursor already
	// auto-released.
	r.closed = true
	r.cancel()
	return false
}

// Values returns the current row's values, aligned with Columns. The
// slice is only valid until the next call to Next.
func (r *Rows) Values() []Value { return r.qr.Cursor.Value() }

// Err returns the error that terminated the stream, if any; a
// cancelled context surfaces as its ctx.Err().
func (r *Rows) Err() error { return r.qr.Cursor.Err() }

// Close releases the result: scatter-gather workers are cancelled and
// waited out, the query-gate epoch released. Idempotent; safe (and a
// no-op) after exhaustion.
func (r *Rows) Close() error {
	if !r.closed {
		r.closed = true
		r.cancel()
		return r.qr.Close()
	}
	return nil
}

// Scan copies the current row into dest, one pointer per column, in
// column order. Supported destinations: *int64, *int, *uint64,
// *float64, *string, *[]byte, *bool and *Value. Numeric aggregates scan
// into *float64 regardless of input column kind; string and bytes
// values interconvert.
func (r *Rows) Scan(dest ...any) error {
	row := r.qr.Cursor.Value()
	if len(dest) != len(row) {
		return fmt.Errorf("umzi: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		if err := scanValue(row[i], d); err != nil {
			return fmt.Errorf("umzi: Scan column %q: %w", r.qr.Columns[i], err)
		}
	}
	return nil
}

// ScanValue copies one value into a destination pointer under Scan's
// conversion rules — exported so result surfaces outside this package
// (the network client's Rows) scan identically to local ones.
func ScanValue(v Value, dest any) error { return scanValue(v, dest) }

func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *int64:
		if v.Kind() == keyenc.KindInt64 {
			*d = v.Int()
			return nil
		}
		if v.Kind() == keyenc.KindUint64 {
			u := v.Uint()
			if u > math.MaxInt64 {
				return fmt.Errorf("uint64 value %d overflows int64: %w", u, ErrRange)
			}
			*d = int64(u)
			return nil
		}
	case *int:
		if v.Kind() == keyenc.KindInt64 {
			n := v.Int()
			if int64(int(n)) != n { // 32-bit platforms
				return fmt.Errorf("int64 value %d overflows int: %w", n, ErrRange)
			}
			*d = int(n)
			return nil
		}
		if v.Kind() == keyenc.KindUint64 {
			u := v.Uint()
			if u > math.MaxInt {
				return fmt.Errorf("uint64 value %d overflows int: %w", u, ErrRange)
			}
			*d = int(u)
			return nil
		}
	case *uint64:
		if v.Kind() == keyenc.KindUint64 {
			*d = v.Uint()
			return nil
		}
	case *float64:
		switch v.Kind() {
		case keyenc.KindFloat64:
			*d = v.Float()
			return nil
		case keyenc.KindInt64:
			*d = float64(v.Int())
			return nil
		case keyenc.KindUint64:
			*d = float64(v.Uint())
			return nil
		}
	case *string:
		if v.Kind() == keyenc.KindString || v.Kind() == keyenc.KindBytes {
			*d = string(v.Bytes())
			return nil
		}
	case *[]byte:
		if v.Kind() == keyenc.KindString || v.Kind() == keyenc.KindBytes {
			*d = append([]byte(nil), v.Bytes()...)
			return nil
		}
	case *bool:
		if v.Kind() == keyenc.KindBool {
			*d = v.Bool()
			return nil
		}
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return fmt.Errorf("cannot scan %v value into %T", v.Kind(), dest)
}
