package umzi_test

import (
	"testing"
	"time"

	"umzi"
)

// TestPublicAPIIndexLifecycle drives the full index lifecycle through the
// public facade only: create, build, query at timestamps, merge, evolve,
// crash-recover via Open, and keep working.
func TestPublicAPIIndexLifecycle(t *testing.T) {
	store := umzi.NewMemStore(umzi.LatencyModel{})
	cfg := umzi.Config{
		Name: "pub",
		Def: umzi.IndexDef{
			Equality: []umzi.Column{{Name: "k", Kind: umzi.KindString}},
			Sort:     []umzi.Column{{Name: "seq", Kind: umzi.KindUint64}},
			Included: []umzi.Column{{Name: "v", Kind: umzi.KindInt64}},
		},
		Store: store,
		Cache: umzi.NewSSDCache(0, umzi.LatencyModel{}),
		K:     2,
	}
	ix, err := umzi.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	build := func(cycle uint64, zone umzi.ZoneID, val int64) []umzi.Entry {
		var entries []umzi.Entry
		for i := uint32(0); i < 20; i++ {
			e, err := ix.MakeEntry(
				[]umzi.Value{umzi.Str("stream-A")},
				[]umzi.Value{umzi.U64(uint64(i))},
				[]umzi.Value{umzi.I64(val)},
				umzi.MakeTS(cycle, i),
				umzi.RID{Zone: zone, Block: cycle, Offset: i},
			)
			if err != nil {
				t.Fatal(err)
			}
			entries = append(entries, e)
		}
		return entries
	}
	for c := uint64(1); c <= 4; c++ {
		if err := ix.BuildRun(build(c, umzi.ZoneGroomed, int64(c)), umzi.BlockRange{Min: c, Max: c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Newest version wins; historical snapshot sees cycle 2.
	e, found, err := ix.PointLookup([]umzi.Value{umzi.Str("stream-A")}, []umzi.Value{umzi.U64(3)}, umzi.MaxTS)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	_, _, incl, err := ix.DecodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if incl[0].Int() != 4 {
		t.Fatalf("newest value = %d, want 4", incl[0].Int())
	}
	e, found, err = ix.PointLookup([]umzi.Value{umzi.Str("stream-A")}, []umzi.Value{umzi.U64(3)}, umzi.MakeTS(2, 1<<20))
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if e.BeginTS.GroomSeq() != 2 {
		t.Fatalf("snapshot version from cycle %d, want 2", e.BeginTS.GroomSeq())
	}

	// Evolve cycles 1-2 and scan across the zone boundary.
	if err := ix.Evolve(1, build(2, umzi.ZonePostGroomed, 2), umzi.BlockRange{Min: 1, Max: 2}); err != nil {
		t.Fatal(err)
	}
	matches, err := ix.RangeScan(umzi.ScanOptions{
		Equality: []umzi.Value{umzi.Str("stream-A")},
		SortLo:   []umzi.Value{umzi.U64(5)},
		SortHi:   []umzi.Value{umzi.U64(9)},
		TS:       umzi.MaxTS,
		Method:   umzi.MethodPQ,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("scan returned %d, want 5", len(matches))
	}

	// Crash + recover through the facade.
	ix.Close()
	ix2, err := umzi.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.MaxCoveredGroomedID(); got != 2 {
		t.Fatalf("recovered watermark = %d, want 2", got)
	}
	out, foundB, err := ix2.LookupBatch([]umzi.LookupKey{
		{Equality: []umzi.Value{umzi.Str("stream-A")}, Sort: []umzi.Value{umzi.U64(7)}},
		{Equality: []umzi.Value{umzi.Str("stream-B")}, Sort: []umzi.Value{umzi.U64(0)}},
	}, umzi.MaxTS)
	if err != nil {
		t.Fatal(err)
	}
	if !foundB[0] || foundB[1] {
		t.Fatalf("batch found = %v, want [true false]", foundB)
	}
	if out[0].BeginTS.GroomSeq() != 4 {
		t.Fatalf("batch version from cycle %d, want 4", out[0].BeginTS.GroomSeq())
	}
}

// TestPublicAPIEngineLifecycle drives the engine facade: transactions,
// grooming daemons, snapshot reads, history.
func TestPublicAPIEngineLifecycle(t *testing.T) {
	eng, err := umzi.NewEngine(umzi.EngineConfig{
		Table: umzi.TableDef{
			Name: "pubtbl",
			Columns: []umzi.TableColumn{
				{Name: "id", Kind: umzi.KindInt64},
				{Name: "rev", Kind: umzi.KindInt64},
				{Name: "body", Kind: umzi.KindString},
			},
			PrimaryKey: []string{"id", "rev"},
			ShardKey:   []string{"id"},
		},
		Index: umzi.IndexSpec{
			Equality: []string{"id"},
			Sort:     []string{"rev"},
			Included: []string{"body"},
		},
		Store: umzi.NewMemStore(umzi.LatencyModel{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tx, err := eng.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	for rev := int64(0); rev < 5; rev++ {
		if err := tx.Upsert(umzi.Row{umzi.I64(1), umzi.I64(rev), umzi.Str("draft")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Groom(); err != nil {
		t.Fatal(err)
	}
	// Update one row, groom, post-groom, sync.
	if err := eng.UpsertRows(0, umzi.Row{umzi.I64(1), umzi.I64(2), umzi.Str("final")}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := eng.SyncIndex(); err != nil {
		t.Fatal(err)
	}

	rec, found, err := eng.Get([]umzi.Value{umzi.I64(1)}, []umzi.Value{umzi.I64(2)}, umzi.QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if string(rec.Row[2].Bytes()) != "final" {
		t.Fatalf("body = %q, want final", rec.Row[2].Bytes())
	}
	hist, err := eng.History([]umzi.Value{umzi.I64(1)}, []umzi.Value{umzi.I64(2)}, umzi.QueryOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || string(hist[1].Row[2].Bytes()) != "draft" {
		t.Fatalf("history = %d versions", len(hist))
	}

	// Background daemons keep it consistent.
	eng.Start(time.Millisecond, 5*time.Millisecond)
	for i := int64(10); i < 30; i++ {
		if err := eng.UpsertRows(0, umzi.Row{umzi.I64(2), umzi.I64(i), umzi.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		recs, err := eng.Scan([]umzi.Value{umzi.I64(2)}, nil, nil, umzi.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemons stalled: %d of 20 rows visible", len(recs))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
