package umzi

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"umzi/internal/obs"
	"umzi/internal/wildfire"
)

// The unified front end. Wildfire is a multi-table HTAP database; DB is
// its handle: one shared store and SSD cache serving any number of
// tables, each behind a *Table whose query surface is the fluent
// builder (Table.Query) regardless of how many shards the table runs
// on. The table set is persisted in a sequenced catalog under
// db/catalog/, so OpenDB on an existing store recovers every table —
// definitions, shard counts, primary and secondary indexes — in one
// call, the multi-table generalization of the paper's §5.5 recovery
// story.

// DBConfig configures a DB.
type DBConfig struct {
	// Store is the shared storage backend all tables live in (required).
	Store ObjectStore
	// Cache is the local SSD block cache shared by every table; nil
	// disables caching.
	Cache *SSDCache
	// GroomEvery / PostGroomEvery, when positive, auto-start the
	// background daemons (groomer, post-groomer, indexer) of every
	// table the DB opens or creates, at these cadences — the paper's
	// 1s / 10min split, scaled to taste. Zero leaves daemons manual
	// (Table.Start, Table.Groom, ...).
	GroomEvery     time.Duration
	PostGroomEvery time.Duration
	// Durability is the default commit-log configuration for tables
	// created without their own TableOptions.Durability. The zero value
	// is full per-commit durability with group commit. Recovered tables
	// reopen with the durability options persisted in the catalog.
	Durability DurabilityOptions
	// BlockCacheBytes is the default per-table decoded-block cache
	// budget for tables created without their own
	// TableOptions.BlockCacheBytes (<=0 selects the engine default).
	BlockCacheBytes int64
}

// TableOptions configures one table at creation.
type TableOptions struct {
	// Shards is the number of hash partitions; 0 or 1 runs the table on
	// a single engine, N>1 behind the scatter-gather sharding layer.
	// The query surface is identical either way.
	Shards int
	// Index is the primary Umzi index layout. Zero value derives a
	// default: the table's sharding key as equality columns and the
	// remaining primary-key columns as sort columns.
	Index IndexSpec
	// Secondaries declares secondary indexes built with the table.
	Secondaries []SecondaryIndexSpec
	// Replicas is the number of multi-master replicas per shard.
	Replicas int
	// Partitions is the number of partition-key buckets per shard.
	Partitions int
	// Parallelism bounds the scatter-gather pool of a sharded table.
	Parallelism int
	// ScanParallelism bounds each shard's intra-shard scan worker pool
	// (0 derives a default from GOMAXPROCS; 1 scans sequentially).
	ScanParallelism int
	// BlockCacheBytes budgets the table's decoded-block cache, shared
	// across its shards (<=0 inherits DBConfig.BlockCacheBytes, then the
	// engine default).
	BlockCacheBytes int64
	// IndexTuning forwards merge-policy knobs to every Umzi instance.
	IndexTuning Config
	// Durability configures the table's per-shard commit logs; it is
	// persisted in the DB catalog, so a reopened store recovers each
	// table's un-groomed log tail with the same policy it was written
	// under. The zero value inherits DBConfig.Durability.
	Durability DurabilityOptions
}

// DB is one Wildfire-style multi-table database over a shared store.
type DB struct {
	store           ObjectStore
	cache           *SSDCache
	groomEvery      time.Duration
	postGroomEvery  time.Duration
	durability      DurabilityOptions
	blockCacheBytes int64
	// obs is the DB-wide metric registry every table's engines register
	// into; Metrics/MetricsHandler expose it.
	obs *obs.Registry

	mu         sync.Mutex
	tables     map[string]*Table
	order      []string
	catalogSeq uint64
	closed     bool
}

// OpenDB opens (or initializes) a database on a shared store: the
// persisted catalog is read and every table in it is recovered — its
// engines, index sets and counters rebuilt from storage alone.
func OpenDB(cfg DBConfig) (*DB, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("umzi: DBConfig.Store is required")
	}
	db := &DB{
		store:           cfg.Store,
		cache:           cfg.Cache,
		groomEvery:      cfg.GroomEvery,
		postGroomEvery:  cfg.PostGroomEvery,
		durability:      cfg.Durability,
		blockCacheBytes: cfg.BlockCacheBytes,
		obs:             obs.NewRegistry(),
		tables:          make(map[string]*Table),
	}
	db.registerStorageGauges()
	entries, seq, err := loadDBCatalog(cfg.Store)
	if err != nil {
		return nil, err
	}
	db.catalogSeq = seq
	for _, e := range entries {
		tbl, err := db.openTable(e)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("umzi: recovering table %s: %w", e.Def.Name, err)
		}
		db.tables[e.Def.Name] = tbl
		db.order = append(db.order, e.Def.Name)
	}
	return db, nil
}

// CreateTable creates a table, persists it in the DB catalog and
// returns its handle. The name must be new to this DB.
func (db *DB) CreateTable(def TableDef, opts TableOptions) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, fmt.Errorf("umzi: db closed")
	}
	if _, ok := db.tables[def.Name]; ok {
		return nil, fmt.Errorf("umzi: table %q already exists", def.Name)
	}
	if err := def.Validate(); err != nil {
		return nil, err
	}
	entry := dbCatalogEntry{
		Def:             def,
		Index:           opts.Index,
		Shards:          opts.Shards,
		Replicas:        opts.Replicas,
		Partitions:      opts.Partitions,
		Parallelism:     opts.Parallelism,
		ScanParallelism: opts.ScanParallelism,
		BlockCacheBytes: opts.BlockCacheBytes,
		Durability:      opts.Durability,
	}
	if specZero(entry.Index) {
		entry.Index = defaultIndexSpec(def)
	}
	if entry.Durability == (DurabilityOptions{}) {
		entry.Durability = db.durability
	}
	if entry.BlockCacheBytes <= 0 {
		entry.BlockCacheBytes = db.blockCacheBytes
	}
	entry.tuning = opts.IndexTuning
	tbl, err := db.openTable(entry)
	if err != nil {
		return nil, err
	}
	// Secondaries ride through the engine config only at creation; the
	// per-table index catalog owns them from here (CreateIndex included),
	// so the DB catalog needs just the table-level shape.
	if len(opts.Secondaries) > 0 {
		for _, s := range opts.Secondaries {
			if err := tbl.topo.CreateIndex(s); err != nil {
				tbl.topo.Close()
				return nil, err
			}
		}
	}
	db.tables[def.Name] = tbl
	db.order = append(db.order, def.Name)
	if err := db.writeCatalogLocked(); err != nil {
		delete(db.tables, def.Name)
		db.order = db.order[:len(db.order)-1]
		tbl.topo.Close()
		return nil, err
	}
	return tbl, nil
}

// openTable constructs one table's topology from a catalog entry.
func (db *DB) openTable(e dbCatalogEntry) (*Table, error) {
	var topo topology
	if e.Shards > 1 {
		eng, err := wildfire.NewShardedEngine(wildfire.ShardedConfig{
			Table:           e.Def,
			Index:           e.Index,
			Shards:          e.Shards,
			Parallelism:     e.Parallelism,
			ScanParallelism: e.ScanParallelism,
			BlockCacheBytes: e.BlockCacheBytes,
			Store:           db.store,
			Cache:           db.cache,
			Replicas:        e.Replicas,
			Partitions:      e.Partitions,
			IndexTuning:     e.tuning,
			Durability:      e.Durability,
			Obs:             db.obs,
		})
		if err != nil {
			return nil, err
		}
		topo = shardedTopo{eng}
	} else {
		eng, err := wildfire.NewEngine(wildfire.Config{
			Table:           e.Def,
			Index:           e.Index,
			Store:           db.store,
			Cache:           db.cache,
			ScanParallelism: e.ScanParallelism,
			BlockCacheBytes: e.BlockCacheBytes,
			Replicas:        e.Replicas,
			Partitions:      e.Partitions,
			IndexTuning:     e.tuning,
			Durability:      e.Durability,
			Obs:             db.obs,
		})
		if err != nil {
			return nil, err
		}
		topo = singleTopo{eng}
	}
	if db.groomEvery > 0 {
		post := db.postGroomEvery
		if post <= 0 {
			post = 5 * db.groomEvery
		}
		topo.Start(db.groomEvery, post)
	}
	return &Table{db: db, name: e.Def.Name, topo: topo, catalogEntry: e}, nil
}

// Table returns the handle of an open table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("umzi: no table %q (have %v)", name, db.order)
	}
	return tbl, nil
}

// Tables lists the open tables in creation order.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]string(nil), db.order...)
}

// Close stops every table's daemons and closes their engines.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	for _, name := range db.order {
		if err := db.tables[name].topo.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// specZero reports whether an index spec was left at its zero value.
func specZero(s IndexSpec) bool {
	return len(s.Equality) == 0 && len(s.Sort) == 0 && len(s.Included) == 0 && s.HashBits == 0
}

// defaultIndexSpec derives the default primary index layout: the
// sharding key as equality columns (point lookups and pinned scans hash
// on it) and the remaining primary-key columns as sort columns.
func defaultIndexSpec(def TableDef) IndexSpec {
	spec := IndexSpec{Equality: append([]string(nil), def.ShardKey...)}
	inEq := map[string]bool{}
	for _, c := range spec.Equality {
		inEq[c] = true
	}
	for _, c := range def.PrimaryKey {
		if !inEq[c] {
			spec.Sort = append(spec.Sort, c)
		}
	}
	return spec
}

// ---- Multi-table transactions ----------------------------------------

// Tx stages upserts across any tables of the DB; Commit routes them to
// their tables (and, within a table, their shards). Like Wildfire's
// multi-master shard commits, cross-table commits are not atomic: a
// failure or cancellation mid-commit can leave a committed prefix.
type Tx struct {
	db      *DB
	replica int
	staged  map[string][]Row
	order   []string
	done    bool
}

// Begin starts a transaction. The context is consulted immediately and
// again at Commit; a transaction carries no locks, so there is nothing
// to time out in between.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("umzi: db closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Tx{db: db, staged: make(map[string][]Row)}, nil
}

// WithReplica routes the transaction's commits through the given
// multi-master replica ordinal (default 0).
func (tx *Tx) WithReplica(replica int) *Tx {
	tx.replica = replica
	return tx
}

// Upsert stages rows into one table; validation happens eagerly.
func (tx *Tx) Upsert(table string, rows ...Row) error {
	if tx.done {
		return fmt.Errorf("umzi: transaction already finished")
	}
	tbl, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	def := tbl.Def()
	for _, r := range rows {
		if err := wildfire.ValidateRow(def, r); err != nil {
			return err
		}
		cp := make(Row, len(r))
		copy(cp, r)
		if _, ok := tx.staged[table]; !ok {
			tx.order = append(tx.order, table)
		}
		tx.staged[table] = append(tx.staged[table], cp)
	}
	return nil
}

// Commit publishes the staged rows table by table (and shard by shard
// within a table). The context is checked before each table's commit.
func (tx *Tx) Commit(ctx context.Context) error {
	if tx.done {
		return fmt.Errorf("umzi: transaction already finished")
	}
	tx.done = true
	for _, name := range tx.order {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("umzi: commit interrupted before table %s (earlier tables are durable): %w", name, err)
		}
		tbl, err := tx.db.Table(name)
		if err != nil {
			return err
		}
		inner, err := tbl.topo.begin(tx.replica)
		if err != nil {
			return err
		}
		for _, r := range tx.staged[name] {
			if err := inner.Upsert(r); err != nil {
				inner.Abort()
				return err
			}
		}
		if err := inner.CommitContext(ctx); err != nil {
			return err
		}
	}
	tx.staged = nil
	return nil
}

// Abort discards the staged rows.
func (tx *Tx) Abort() {
	tx.done = true
	tx.staged = nil
}

// ---- Persisted DB catalog --------------------------------------------
//
// Sequenced records under db/catalog/, newest valid record wins —
// shared storage has no in-place update — mirroring the per-table index
// catalog. The record is JSON: it is tiny, written once per DDL, and
// umzi-inspect prints it for humans.

// dbCatalogEntry is one table of the catalog.
type dbCatalogEntry struct {
	Def             TableDef
	Index           IndexSpec
	Shards          int   `json:",omitempty"`
	Replicas        int   `json:",omitempty"`
	Partitions      int   `json:",omitempty"`
	Parallelism     int   `json:",omitempty"`
	ScanParallelism int   `json:",omitempty"`
	BlockCacheBytes int64 `json:",omitempty"`
	// Durability is the table's commit-log configuration; persisting it
	// means OpenDB replays every table's un-groomed log tail under the
	// policy it was written with, with no per-table setup.
	Durability DurabilityOptions

	// tuning is carried in memory only (and never marshaled): core.Config
	// holds live handles and tuning is a process-local concern.
	tuning Config
}

// dbCatalogRecord is the stored record.
type dbCatalogRecord struct {
	Magic  string
	Tables []dbCatalogEntry
}

const dbCatalogMagic = "UMZIDB1"

func dbCatalogName(seq uint64) string {
	return fmt.Sprintf("db/catalog/%012d", seq)
}

// DBCatalogPrefix is where the multi-table catalog lives in a store;
// exported for inspection tooling.
const DBCatalogPrefix = "db/catalog/"

// loadDBCatalog reads the newest valid catalog record, returning
// (nil, 0, nil) for a store that never had one.
func loadDBCatalog(store ObjectStore) ([]dbCatalogEntry, uint64, error) {
	names, err := store.List(DBCatalogPrefix)
	if err != nil {
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, nil
	}
	sort.Strings(names)
	var maxSeq uint64
	fmt.Sscanf(strings.TrimPrefix(names[len(names)-1], DBCatalogPrefix), "%d", &maxSeq)
	// Newest to oldest: only a record that exists but does not decode is
	// an interrupted write we may skip; a failing Get surfaces.
	for i := len(names) - 1; i >= 0; i-- {
		data, err := store.Get(names[i])
		if err != nil {
			return nil, 0, fmt.Errorf("umzi: reading db catalog record %s: %w", names[i], err)
		}
		var rec dbCatalogRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Magic != dbCatalogMagic {
			continue
		}
		return rec.Tables, maxSeq, nil
	}
	return nil, maxSeq, fmt.Errorf("umzi: store has db catalog objects but no readable record")
}

// writeCatalogLocked persists the current table set as a fresh catalog
// record and prunes old records. Callers hold db.mu.
func (db *DB) writeCatalogLocked() error {
	rec := dbCatalogRecord{Magic: dbCatalogMagic}
	for _, name := range db.order {
		rec.Tables = append(rec.Tables, db.tables[name].entry())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	db.catalogSeq++
	if err := db.store.Put(dbCatalogName(db.catalogSeq), data); err != nil {
		return err
	}
	names, err := db.store.List(DBCatalogPrefix)
	if err == nil && len(names) > 2 {
		sort.Strings(names)
		for _, n := range names[:len(names)-2] {
			_ = db.store.Delete(n)
		}
	}
	return nil
}

// InspectDBCatalog reads a store's multi-table catalog for tooling:
// table definitions, shard counts and primary index specs, without
// opening any engine.
func InspectDBCatalog(store ObjectStore) ([]DBTableInfo, error) {
	entries, _, err := loadDBCatalog(store)
	if err != nil {
		return nil, err
	}
	out := make([]DBTableInfo, 0, len(entries))
	for _, e := range entries {
		shards := e.Shards
		if shards < 1 {
			shards = 1
		}
		out = append(out, DBTableInfo{
			Def:             e.Def,
			Index:           e.Index,
			Shards:          shards,
			ScanParallelism: e.ScanParallelism,
			BlockCacheBytes: e.BlockCacheBytes,
		})
	}
	return out, nil
}

// DBTableInfo is one table of a store's catalog, as seen by tooling.
type DBTableInfo struct {
	Def    TableDef
	Index  IndexSpec
	Shards int
	// ScanParallelism is the configured per-shard scan worker bound
	// (0: derived from GOMAXPROCS at open).
	ScanParallelism int
	// BlockCacheBytes is the configured decoded-block cache budget
	// (0: the engine default applies at open).
	BlockCacheBytes int64
}

// ShardTableName returns the storage-level table name of one shard of a
// sharded table (shard 0 of a 1-shard table is the table itself); it is
// what per-table storage prefixes ("tbl/<name>/...") are derived from.
func ShardTableName(table string, shards, shard int) string {
	if shards <= 1 {
		return table
	}
	return wildfire.ShardTableName(table, shard)
}
