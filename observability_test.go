package umzi_test

import (
	"context"
	"testing"
	"time"

	"umzi"
)

// TestQueryExplainSynopsisSkip builds a table whose groomed blocks have
// disjoint key ranges and asserts the Explain trace reports exactly the
// blocks the min/max synopsis can exclude — and that the engine-wide
// skip counters moved by the same amounts.
func TestQueryExplainSynopsisSkip(t *testing.T) {
	ctx := context.Background()
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(ordersDef("orders"), umzi.TableOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three groom cycles with disjoint order_id ranges: three groomed
	// blocks with non-overlapping key synopses.
	for blk := int64(0); blk < 3; blk++ {
		for i := int64(0); i < 20; i++ {
			id := blk*1000 + i
			err := tbl.Upsert(ctx, umzi.Row{
				umzi.I64(id), umzi.I64(id % 7), umzi.F64(float64(id)), umzi.Str("amer"),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Groom(); err != nil {
			t.Fatal(err)
		}
	}

	before := db.Metrics()
	readBefore := before.Sum("exec_blocks_read", nil)
	skipBefore := before.Sum("exec_blocks_skipped", nil)

	// An executor scan bounded to the middle block's range: the synopsis
	// must exclude the other two blocks without materializing them.
	q := tbl.Query().
		Where(umzi.And(umzi.Ge("order_id", umzi.I64(1000)), umzi.Lt("order_id", umzi.I64(2000)))).
		NoIndex()
	tr := q.Explain()
	rows, err := q.All(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("query returned %d rows, want 20", len(rows))
	}
	s := tr.Snapshot()
	if s.Plan != "exec" {
		t.Fatalf("plan = %q, want exec (NoIndex)", s.Plan)
	}
	if s.BlocksRead != 1 || s.BlocksSkipped != 2 {
		t.Errorf("trace blocks = %d read / %d skipped, want 1 read / 2 skipped", s.BlocksRead, s.BlocksSkipped)
	}
	if s.RowsEmitted != 20 {
		t.Errorf("trace rows_emitted = %d, want 20", s.RowsEmitted)
	}
	if len(s.Spans) != 1 || s.Spans[0].BlocksSkipped != 2 {
		t.Errorf("spans = %+v, want one span with 2 skipped", s.Spans)
	}

	after := db.Metrics()
	if got := after.Sum("exec_blocks_read", nil) - readBefore; got != s.BlocksRead {
		t.Errorf("exec_blocks_read moved by %d, trace says %d", got, s.BlocksRead)
	}
	if got := after.Sum("exec_blocks_skipped", nil) - skipBefore; got != s.BlocksSkipped {
		t.Errorf("exec_blocks_skipped moved by %d, trace says %d", got, s.BlocksSkipped)
	}
}

// TestMetricsAnswerWorkloadQuestions is the acceptance check of the
// observability PR: after a grooming workload, DB.Metrics() alone must
// answer the operational questions — WAL watermark lag, group-commit
// batch size percentiles, commit-ack→groomed-visibility freshness, and
// the synopsis skip ratio — and each answer must agree with ground
// truth observed independently by the harness.
func TestMetricsAnswerWorkloadQuestions(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(ordersDef("orders"), umzi.TableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	const rounds, perRound = 4, 25
	var committed int64
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			id := int64(r*perRound + i)
			err := tbl.Upsert(ctx, umzi.Row{
				umzi.I64(id), umzi.I64(id % 5), umzi.F64(float64(id)), umzi.Str("emea"),
			})
			if err != nil {
				t.Fatal(err)
			}
			committed++
		}
		// Ground truth for watermark lag, mid-workload: the engine gauge
		// must agree with the WALStatus API at every groom boundary.
		wantLag := int64(0)
		for _, st := range tbl.WALStatus() {
			wantLag += int64(st.MaxSeq - st.Mark)
		}
		if gotLag := db.Metrics().Sum("wal_watermark_lag", nil); gotLag != wantLag {
			t.Errorf("round %d: wal_watermark_lag = %d, WALStatus says %d", r, gotLag, wantLag)
		}
		if err := tbl.Groom(); err != nil {
			t.Fatal(err)
		}
	}

	snap := db.Metrics()

	// 1. WAL watermark lag: everything committed is groomed, lag 0 —
	// and the gauge agrees with WALStatus.
	var wantLag int64
	for _, st := range tbl.WALStatus() {
		wantLag += int64(st.MaxSeq - st.Mark)
	}
	if wantLag != 0 {
		t.Fatalf("ground truth broken: lag %d after full groom", wantLag)
	}
	if got := snap.Sum("wal_watermark_lag", nil); got != wantLag {
		t.Errorf("wal_watermark_lag = %d, want %d", got, wantLag)
	}

	// 2. Group-commit batch size: serial committers never share a
	// segment, so every batch is exactly one record — p50 == p99 == 1,
	// and the histogram totals reconcile with the commit count.
	var batchCount, batchSum int64
	for _, m := range snap.Metrics {
		if m.Name == "wal_batch_records" && m.Hist != nil {
			batchCount += m.Hist.Count
			batchSum += m.Hist.Sum
			if m.Hist.Count > 0 && (m.Hist.P50 != 1 || m.Hist.P99 != 1 || m.Hist.Max != 1) {
				t.Errorf("serial commits: batch percentiles %+v, want all 1 (%v)", m.Hist, m.Labels)
			}
		}
	}
	if batchSum != committed {
		t.Errorf("wal_batch_records sum = %d records, harness committed %d", batchSum, committed)
	}
	if batchCount != committed {
		t.Errorf("wal_batch_records count = %d segments, want %d (one per serial commit)", batchCount, committed)
	}
	if appends := snap.Sum("wal_appends", nil); appends != committed {
		t.Errorf("wal_appends = %d, harness committed %d", appends, committed)
	}

	// 3. Freshness: one sample per committed-and-groomed row, every lag
	// positive and below the harness's own wall-clock bound for the run.
	elapsed := time.Since(start)
	var frCount int64
	for _, m := range snap.Metrics {
		if m.Name == "groom_freshness_ns" && m.Hist != nil && m.Hist.Count > 0 {
			frCount += m.Hist.Count
			if m.Hist.Min <= 0 || m.Hist.P50 <= 0 || m.Hist.P99 < m.Hist.P50 {
				t.Errorf("implausible freshness histogram %+v (%v)", m.Hist, m.Labels)
			}
			if m.Hist.Max > int64(elapsed) {
				t.Errorf("freshness max %v exceeds the whole run's elapsed %v", time.Duration(m.Hist.Max), elapsed)
			}
		}
	}
	if frCount != committed {
		t.Errorf("groom_freshness_ns samples = %d, harness committed %d rows", frCount, committed)
	}

	// 4. Synopsis skip ratio: a range query touching one round's rows
	// must skip the other rounds' blocks; the counters' ratio must match
	// the per-query trace (the harness-side ground truth).
	readBefore := snap.Sum("exec_blocks_read", nil)
	skipBefore := snap.Sum("exec_blocks_skipped", nil)
	q := tbl.Query().Where(umzi.Lt("order_id", umzi.I64(perRound))).NoIndex()
	tr := q.Explain()
	rows, err := q.All(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != perRound {
		t.Fatalf("range query returned %d rows, want %d", len(rows), perRound)
	}
	s := tr.Snapshot()
	after := db.Metrics()
	read := after.Sum("exec_blocks_read", nil) - readBefore
	skipped := after.Sum("exec_blocks_skipped", nil) - skipBefore
	if read != s.BlocksRead || skipped != s.BlocksSkipped {
		t.Errorf("engine counters (%d read / %d skipped) disagree with trace (%d / %d)",
			read, skipped, s.BlocksRead, s.BlocksSkipped)
	}
	if skipped == 0 {
		t.Errorf("no blocks skipped: synopsis skip ratio unanswerable (read %d)", read)
	}
	if total := read + skipped; total > 0 {
		ratio := float64(skipped) / float64(total)
		// 2 shards × 4 rounds = 8 blocks; only round 0's blocks match.
		if ratio < 0.5 {
			t.Errorf("skip ratio %.2f, want >= 0.5 for a one-round range over %d rounds", ratio, rounds)
		}
	}
}
